"""Tests for repro.obs.recorder — ring buffer, JSONL, active plumbing."""

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    TraceRecorder,
    activate,
    active_recorder,
    deactivate,
    describe_seed,
    load_jsonl,
    load_jsonl_meta,
    recording,
)


class TestRingBuffer:
    def test_emit_and_snapshot(self):
        rec = TraceRecorder()
        rec.emit("select", step=0, requested=4)
        rec.emit("step", step=0, committed=3)
        assert len(rec) == 2
        kinds = [e.kind for e in rec.events]
        assert kinds == ["select", "step"]

    def test_capacity_drops_oldest(self):
        rec = TraceRecorder(capacity=3)
        for i in range(5):
            rec.emit("step", step=i)
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [e.step for e in rec.events] == [2, 3, 4]

    def test_unbounded_capacity(self):
        rec = TraceRecorder(capacity=None)
        for i in range(100):
            rec.emit("step", step=i)
        assert len(rec) == 100 and rec.dropped == 0

    def test_invalid_capacity(self):
        with pytest.raises(ObservabilityError):
            TraceRecorder(capacity=0)

    def test_clear(self):
        rec = TraceRecorder(capacity=1)
        rec.emit("step", step=0)
        rec.emit("step", step=1)
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0

    def test_record_prebuilt_event(self):
        from repro.obs import TraceEvent

        rec = TraceRecorder()
        rec.record(TraceEvent(step=0, kind="custom", data={}))
        assert rec.events[0].kind == "custom"


class TestJsonlIO:
    def test_save_and_load_round_trip(self, tmp_path):
        rec = TraceRecorder()
        rec.emit("run_start", step=0, seed=7)
        rec.emit("step", step=0, committed=2, aborted=1)
        path = tmp_path / "trace.jsonl"
        rec.save_jsonl(path)
        events = load_jsonl(path)
        assert events == rec.events

    def test_to_jsonl_is_one_line_per_event(self):
        rec = TraceRecorder()
        rec.emit("step", step=0)
        rec.emit("step", step=1)
        text = rec.to_jsonl()
        assert text.count("\n") == 2 and text.endswith("\n")

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"step":0,"kind":"step","data":{}}\n\n\n', encoding="utf-8")
        assert len(load_jsonl(path)) == 1

    def test_load_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"step":0,"kind":"step","data":{}}\nnot json\n', encoding="utf-8"
        )
        with pytest.raises(ObservabilityError, match=":2:"):
            load_jsonl(path)


class TestDroppedMetadata:
    def test_complete_trace_has_no_meta_line(self):
        # golden fixtures depend on this: an unwrapped export is pure events
        rec = TraceRecorder(capacity=10)
        rec.emit("step", step=0)
        assert '"meta"' not in rec.to_jsonl()

    def test_wrapped_ring_exports_dropped_meta(self, tmp_path):
        rec = TraceRecorder(capacity=3)
        for i in range(8):
            rec.emit("step", step=i)
        text = rec.to_jsonl()
        first = text.splitlines()[0]
        assert '"meta"' in first and '"dropped":5' in first
        path = tmp_path / "wrapped.jsonl"
        rec.save_jsonl(path)
        events, meta = load_jsonl_meta(path)
        assert meta == {"capacity": 3, "dropped": 5}
        assert [e.step for e in events] == [5, 6, 7]

    def test_load_jsonl_skips_meta_line(self, tmp_path):
        rec = TraceRecorder(capacity=2)
        for i in range(4):
            rec.emit("step", step=i)
        path = tmp_path / "wrapped.jsonl"
        rec.save_jsonl(path)
        assert load_jsonl(path) == rec.events  # meta line is not an event

    def test_complete_trace_meta_is_empty(self, tmp_path):
        rec = TraceRecorder()
        rec.emit("step", step=0)
        path = tmp_path / "full.jsonl"
        rec.save_jsonl(path)
        _events, meta = load_jsonl_meta(path)
        assert meta == {}

    def test_malformed_meta_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"meta":3}\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="meta"):
            load_jsonl_meta(path)


class TestActivePlumbing:
    def test_activate_deactivate(self):
        assert active_recorder() is None
        rec = TraceRecorder()
        try:
            assert activate(rec) is rec
            assert active_recorder() is rec
        finally:
            deactivate()
        assert active_recorder() is None

    def test_activate_rejects_non_recorder(self):
        with pytest.raises(ObservabilityError):
            activate("not a recorder")

    def test_recording_context_restores_previous(self):
        outer = TraceRecorder()
        activate(outer)
        try:
            with recording() as inner:
                assert active_recorder() is inner
            assert active_recorder() is outer
        finally:
            deactivate()

    def test_recording_saves_on_exit(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with recording(path) as rec:
            rec.emit("step", step=0, committed=1)
        assert load_jsonl(path) == rec.events

    def test_recording_saves_even_on_error(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with pytest.raises(RuntimeError):
            with recording(path) as rec:
                rec.emit("step", step=0)
                raise RuntimeError("boom")
        assert active_recorder() is None
        assert len(load_jsonl(path)) == 1


class TestDescribeSeed:
    def test_int_passthrough(self):
        assert describe_seed(7) == 7
        assert describe_seed(np.int64(9)) == 9

    def test_none(self):
        assert describe_seed(None) is None

    def test_generator_is_unreplayable(self):
        assert describe_seed(np.random.default_rng(0)) is None
