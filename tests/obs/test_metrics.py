"""Tests for repro.obs.metrics — counters, gauges, histograms, scopes."""

import math

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    activate_metrics,
    active_metrics,
    collecting_metrics,
    deactivate_metrics,
)


class TestPrimitives:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("commits")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("m")
        assert math.isnan(g.value)
        g.set(12)
        g.set(8)
        assert g.value == 8.0

    def test_histogram_matches_numpy(self):
        h = MetricsRegistry().histogram("r")
        xs = [0.1, 0.4, 0.25, 0.9, 0.0]
        for x in xs:
            h.observe(x)
        assert h.count == 5
        assert h.mean == pytest.approx(np.mean(xs))
        assert h.std == pytest.approx(np.std(xs, ddof=1))
        assert h.min == 0.0 and h.max == 0.9


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("engine.aborts")
        with pytest.raises(ObservabilityError, match="engine.aborts"):
            reg.gauge("engine.aborts")

    def test_empty_name_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("")

    def test_names_sorted_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg
        assert len(reg) == 2

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 2.0

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc(10)
        reg.histogram("r").observe(0.2)
        text = reg.render()
        assert "steps: 10" in text and "r: n=1" in text


class TestScopes:
    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        reg.scope("engine").counter("commits").inc(4)
        assert reg.counter("engine.commits").value == 4

    def test_nested_scopes(self):
        reg = MetricsRegistry()
        reg.scope("a").scope("b").gauge("x").set(1)
        assert reg.names() == ["a.b.x"]

    def test_empty_prefix_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().scope("")


class TestActivePlumbing:
    def test_collecting_metrics_activates_and_restores(self):
        assert active_metrics() is None
        with collecting_metrics() as reg:
            assert active_metrics() is reg
        assert active_metrics() is None

    def test_activate_rejects_non_registry(self):
        with pytest.raises(ObservabilityError):
            activate_metrics([])

    def test_manual_activate_deactivate(self):
        reg = MetricsRegistry()
        try:
            activate_metrics(reg)
            assert active_metrics() is reg
        finally:
            deactivate_metrics()
        assert active_metrics() is None

    def test_nested_collecting_restores_outer(self):
        with collecting_metrics() as outer:
            with collecting_metrics() as inner:
                assert active_metrics() is inner
            assert active_metrics() is outer
