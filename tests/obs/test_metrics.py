"""Tests for repro.obs.metrics — counters, gauges, histograms, scopes."""

import math

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    activate_metrics,
    active_metrics,
    collecting_metrics,
    deactivate_metrics,
)


class TestPrimitives:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("commits")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("m")
        assert math.isnan(g.value)
        g.set(12)
        g.set(8)
        assert g.value == 8.0

    def test_histogram_matches_numpy(self):
        h = MetricsRegistry().histogram("r")
        xs = [0.1, 0.4, 0.25, 0.9, 0.0]
        for x in xs:
            h.observe(x)
        assert h.count == 5
        assert h.mean == pytest.approx(np.mean(xs))
        assert h.std == pytest.approx(np.std(xs, ddof=1))
        assert h.min == 0.0 and h.max == 0.9


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("engine.aborts")
        with pytest.raises(ObservabilityError, match="engine.aborts"):
            reg.gauge("engine.aborts")

    def test_empty_name_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("")

    def test_names_sorted_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg
        assert len(reg) == 2

    def test_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1 and snap["h"]["mean"] == 2.0

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc(10)
        reg.histogram("r").observe(0.2)
        text = reg.render()
        assert "steps: 10" in text and "r: n=1" in text


class TestHistogramBuckets:
    def test_quantiles_bracket_the_data(self):
        h = MetricsRegistry().histogram("r")
        for x in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]:
            h.observe(x)
        assert 0.1 <= h.quantile(0.5) <= 1.0
        assert h.quantile(0.95) >= h.quantile(0.5)
        assert h.quantile(0.0) == 0.1 and h.quantile(1.0) == 1.0

    def test_quantile_of_empty_histogram(self):
        h = MetricsRegistry().histogram("r")
        assert math.isnan(h.quantile(0.5))

    def test_quantile_validates_q(self):
        from repro.errors import ObservabilityError as Err

        h = MetricsRegistry().histogram("r")
        h.observe(1.0)
        with pytest.raises(Err):
            h.quantile(-0.1)
        with pytest.raises(Err):
            h.quantile(1.5)

    def test_custom_buckets_must_increase(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ObservabilityError):
            Histogram(buckets=[1.0, 1.0, 2.0])
        with pytest.raises(ObservabilityError):
            Histogram(buckets=[])

    def test_overflow_beyond_last_bound(self):
        from repro.obs.metrics import Histogram

        h = Histogram(buckets=[1.0, 2.0])
        h.observe(0.5)
        h.observe(99.0)
        pairs = h.buckets()
        assert pairs[-1] == (math.inf, 1)  # the 99.0 landed in overflow

    def test_snapshot_carries_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("r")
        for x in (0.1, 0.2, 0.3):
            h.observe(x)
        snap = reg.snapshot()["r"]
        assert {"p50", "p95", "p99"} <= set(snap)
        assert snap["p50"] <= snap["p95"] <= snap["p99"]


class TestSnapshotDeterminism:
    def _build(self, order):
        reg = MetricsRegistry()
        for name in order:
            reg.counter(name).inc()
        reg.histogram("h").observe(0.5)
        return reg

    def test_snapshot_sorted_regardless_of_creation_order(self):
        a = self._build(["b", "a", "c"])
        b = self._build(["c", "b", "a"])
        assert list(a.snapshot()) == ["a", "b", "c", "h"]
        assert a.snapshot() == b.snapshot()

    def test_render_deterministic(self):
        a = self._build(["b", "a"])
        b = self._build(["a", "b"])
        assert a.render() == b.render()

    def test_render_shows_histogram_quantiles(self):
        reg = MetricsRegistry()
        for x in (0.1, 0.2, 0.3):
            reg.histogram("r").observe(x)
        text = reg.render()
        assert "p50=" in text and "p95=" in text


class TestScopes:
    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        reg.scope("engine").counter("commits").inc(4)
        assert reg.counter("engine.commits").value == 4

    def test_nested_scopes(self):
        reg = MetricsRegistry()
        reg.scope("a").scope("b").gauge("x").set(1)
        assert reg.names() == ["a.b.x"]

    def test_empty_prefix_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().scope("")


class TestActivePlumbing:
    def test_collecting_metrics_activates_and_restores(self):
        assert active_metrics() is None
        with collecting_metrics() as reg:
            assert active_metrics() is reg
        assert active_metrics() is None

    def test_activate_rejects_non_registry(self):
        with pytest.raises(ObservabilityError):
            activate_metrics([])

    def test_manual_activate_deactivate(self):
        reg = MetricsRegistry()
        try:
            activate_metrics(reg)
            assert active_metrics() is reg
        finally:
            deactivate_metrics()
        assert active_metrics() is None

    def test_nested_collecting_restores_outer(self):
        with collecting_metrics() as outer:
            with collecting_metrics() as inner:
                assert active_metrics() is inner
            assert active_metrics() is outer
