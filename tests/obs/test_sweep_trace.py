"""Golden-trace regression test for sweep failure/retry/quarantine events.

A checked-in JSONL fixture records the sweep-lifecycle events of a
reference fault drill: two configs, one raise-fault quarantined after a
retry, the other failing once and succeeding on retry.  The scenario is
fully deterministic — injected faults raise on fixed attempt indices,
``backoff_base=0.0`` pins the retry delay to exactly ``0.0``, and sweep
events carry no wall-clock fields — so the canonical JSONL must stay
*byte-identical* run over run and across releases.  Any change to the
sweep event schema or retry/quarantine semantics shows up as a diff here.

Regenerate (only after an intentional semantic change!) with::

    PYTHONPATH=src python -c "from tests.obs.test_sweep_trace import regenerate; regenerate()"
"""

from pathlib import Path

from repro.experiments.parallel import (
    RunConfig,
    SweepPolicy,
    run_sweep,
    sweep_failure_history,
)
from repro.obs import (
    SWEEP_KINDS,
    SWEEP_TASK_QUARANTINED,
    SWEEP_TASK_RETRY,
    TraceRecorder,
    load_jsonl,
    recording,
    verify_trace,
)
from repro.obs.events import event_to_json
from repro.testing import FaultPlan, FaultSpec

FIXTURE = Path(__file__).parent / "fixtures" / "golden_sweep_fault_drill.jsonl"

CONFIGS = (
    RunConfig("fig1", seed=11, quick=True),
    RunConfig("example1", seed=12, quick=True),
)
#: fig1 fails every attempt (quarantined after the retry budget);
#: example1 fails attempt 0 only (one retry, then success)
PLAN = FaultPlan(
    (
        FaultSpec("raise", experiment="fig1", attempts=None),
        FaultSpec("raise", experiment="example1", attempts=(0,)),
    )
)
#: backoff_base=0.0 pins the retry delay to exactly 0.0 (byte-stable)
POLICY = SweepPolicy(max_retries=1, quarantine=True, backoff_base=0.0)


def drill_trace() -> list:
    """Run the reference fault drill; return only its sweep events.

    The inline runs of the healthy config emit engine-level events into
    the same recorder; the fixture pins just the sweep lifecycle.
    """
    with recording() as recorder:
        run_sweep(list(CONFIGS), policy=POLICY, faults=PLAN)
    return [e for e in recorder.events if e.kind in SWEEP_KINDS]


def drill_jsonl() -> str:
    return "".join(event_to_json(e) + "\n" for e in drill_trace())


def regenerate() -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(drill_jsonl(), encoding="utf-8")
    print(f"wrote {FIXTURE}")


class TestGoldenSweepTrace:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), "golden fixture missing; run regenerate()"

    def test_rerun_is_byte_identical(self):
        assert drill_jsonl() == FIXTURE.read_text(encoding="utf-8"), (
            "sweep trace drifted: retry/quarantine semantics or the sweep "
            "event schema changed; if intentional, regenerate the fixture"
        )

    def test_fixture_roundtrips_byte_identically(self):
        events = load_jsonl(FIXTURE)
        rec = TraceRecorder()
        for event in events:
            rec.record(event)
        assert rec.to_jsonl() == FIXTURE.read_text(encoding="utf-8")

    def test_failure_history_survives_the_roundtrip(self):
        live = sweep_failure_history(drill_trace())
        reloaded = sweep_failure_history(load_jsonl(FIXTURE))
        assert reloaded == live
        assert [k for k, _ in reloaded["fig1"]] == [
            "sweep_task_start",
            "sweep_task_failed",
            "sweep_task_retry",
            "sweep_task_start",
            "sweep_task_failed",
            "sweep_task_quarantined",
        ]
        assert [k for k, _ in reloaded["example1"]] == [
            "sweep_task_start",
            "sweep_task_failed",
            "sweep_task_retry",
            "sweep_task_start",
            "sweep_task_complete",
        ]

    def test_retry_and_quarantine_events_recorded(self):
        events = load_jsonl(FIXTURE)
        retries = [e for e in events if e.kind == SWEEP_TASK_RETRY]
        quarantines = [e for e in events if e.kind == SWEEP_TASK_QUARANTINED]
        assert len(retries) == 2
        assert all(e.data["delay"] == 0.0 for e in retries)
        (quarantine,) = quarantines
        assert quarantine.data["experiment"] == "fig1"
        assert quarantine.data["failures"] == 2
        # the retry that led nowhere still names its successor attempt
        fig1_retry = next(e for e in retries if e.data["experiment"] == "fig1")
        assert fig1_retry.data["next_attempt"] == 1
        assert fig1_retry.data["next_seed"] == 11  # raise-retries keep the seed

    def test_fixture_verifies_as_a_trace(self):
        # no engine runs in the fixture: verify_trace must accept a
        # sweep-only trace (vacuously zero replayable runs), not raise
        assert verify_trace(load_jsonl(FIXTURE)) == []

    def test_fixture_kinds_are_known_sweep_kinds(self):
        # every sweep lifecycle kind is registered with the event schema —
        # a renamed/new kind must land in SWEEP_KINDS or it shows up here
        events = load_jsonl(FIXTURE)
        assert events, "empty fixture"
        for event in events:
            assert event.known, f"unregistered kind {event.kind!r}"
            assert event.kind in SWEEP_KINDS
