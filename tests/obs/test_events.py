"""Tests for repro.obs.events — structured trace events."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    CLAMP,
    DECISION,
    RUN_END,
    RUN_START,
    SELECT,
    STEP,
    TraceEvent,
    event_from_json,
    event_to_json,
)


class TestTraceEvent:
    def test_basic_construction(self):
        e = TraceEvent(step=3, kind="step", data={"committed": 5})
        assert e.step == 3 and e.kind == "step"
        assert e.get("committed") == 5
        assert e.get("missing", 42) == 42

    def test_negative_step_rejected(self):
        with pytest.raises(ObservabilityError):
            TraceEvent(step=-1, kind="step")

    def test_empty_kind_rejected(self):
        with pytest.raises(ObservabilityError):
            TraceEvent(step=0, kind="")

    def test_known_kinds(self):
        for kind in (RUN_START, SELECT, STEP, DECISION, CLAMP, RUN_END):
            assert TraceEvent(step=0, kind=kind).known
        assert not TraceEvent(step=0, kind="app_custom").known

    def test_frozen(self):
        e = TraceEvent(step=0, kind="step")
        with pytest.raises(AttributeError):
            e.step = 1


class TestJsonRoundTrip:
    def test_round_trip(self):
        e = TraceEvent(step=7, kind="decision", data={"rule": "A", "m_new": 12})
        back = event_from_json(event_to_json(e))
        assert back == e

    def test_canonical_encoding_is_key_order_independent(self):
        a = TraceEvent(step=0, kind="step", data={"a": 1, "b": 2})
        b = TraceEvent(step=0, kind="step", data={"b": 2, "a": 1})
        assert event_to_json(a) == event_to_json(b)

    def test_canonical_encoding_has_no_whitespace(self):
        line = event_to_json(TraceEvent(step=0, kind="step", data={"x": [1, 2]}))
        assert " " not in line and "\n" not in line

    def test_unserialisable_data_raises(self):
        e = TraceEvent(step=0, kind="step", data={"obj": object()})
        with pytest.raises(ObservabilityError):
            event_to_json(e)

    def test_malformed_line_raises(self):
        with pytest.raises(ObservabilityError):
            event_from_json("{not json")

    def test_non_event_object_raises(self):
        with pytest.raises(ObservabilityError):
            event_from_json('{"foo": 1}')
        with pytest.raises(ObservabilityError):
            event_from_json('[1, 2]')

    def test_non_dict_data_raises(self):
        with pytest.raises(ObservabilityError):
            event_from_json('{"step": 0, "kind": "step", "data": [1]}')
