"""Tests for repro.obs.replay — deterministic replay of recorded runs."""

import numpy as np
import pytest

from repro.control import (
    AIMDController,
    AStealController,
    BisectionController,
    FixedController,
    HybridController,
    NoiseAdaptiveHybridController,
    OracleController,
    PIController,
    ProbingHybridController,
    RecurrenceAController,
    RecurrenceBController,
    diagnose_trace,
)
from repro.errors import ObservabilityError, ReplayMismatchError
from repro.graph.generators import gnm_random
from repro.obs import (
    ReplayController,
    TraceRecorder,
    controller_from_config,
    controller_from_trace,
    recorded_seed,
    replay_decisions,
    split_runs,
    trajectory,
    verify_trace,
)
from repro.runtime.workloads import ConsumingGraphWorkload


def record_run(controller, n=60, d=6, graph_seed=3, engine_seed=11, max_steps=40):
    """Run *controller* on a draining gnm workload under a fresh recorder."""
    rec = TraceRecorder()
    workload = ConsumingGraphWorkload(gnm_random(n, d, seed=graph_seed))
    engine = workload.build_engine(controller, seed=engine_seed, recorder=rec)
    engine.run(max_steps=max_steps)
    return rec.events


CONTROLLERS = [
    HybridController(0.25, m_max=64),
    ProbingHybridController(0.25, 60, probe_windows=2, probe_window_steps=2, m_max=64),
    RecurrenceAController(0.25, m_max=64),
    RecurrenceBController(0.25, m_max=64),
    AIMDController(0.25, m_max=64),
    PIController(0.25, m_max=64),
    AStealController(0.25, m_max=64),
    BisectionController(0.25, m_max=64),
    NoiseAdaptiveHybridController(0.25, m_max=64),
    FixedController(6),
    OracleController(9, m_max=64),
]


class TestReplayAcrossControllers:
    @pytest.mark.parametrize(
        "controller", CONTROLLERS, ids=lambda c: type(c).__name__
    )
    def test_replay_reproduces_m_trajectory(self, controller):
        events = record_run(controller)
        reports = verify_trace(events)
        assert len(reports) == 1
        report = reports[0]
        assert report.matches and report.first_divergence() == -1
        assert report.controller_type == type(controller).__name__
        assert report.steps > 0


class TestTraceHelpers:
    def test_split_runs_segments_at_run_start(self):
        first = record_run(FixedController(4))
        second = record_run(FixedController(8))
        segments = split_runs(first + second)
        assert len(segments) == 2
        assert segments[0][0].kind == "run_start"
        assert trajectory(segments[0])[0][0] == 4
        assert trajectory(segments[1])[0][0] == 8

    def test_split_runs_discards_headless_prefix(self):
        events = record_run(FixedController(4))
        # cut off the run_start, as a ring-buffer overflow would
        segments = split_runs(events[1:])
        assert segments == []

    def test_trajectory_shapes(self):
        events = record_run(HybridController(0.25, m_max=64))
        ms, rs = trajectory(events)
        assert ms.shape == rs.shape and ms.dtype == np.int64
        assert (ms >= 1).all() and (rs >= 0).all() and (rs <= 1).all()

    def test_recorded_seed(self):
        events = record_run(FixedController(4), engine_seed=1234)
        assert recorded_seed(events) == 1234
        assert recorded_seed([]) is None

    def test_commit_accounting_in_step_events(self):
        events = record_run(HybridController(0.25, m_max=64))
        for e in events:
            if e.kind == "step":
                assert e.data["committed"] + e.data["aborted"] == e.data["launched"]
                assert len(e.data["commit_positions"]) == e.data["committed"]
                assert len(e.data["abort_positions"]) == e.data["aborted"]


class TestControllerReconstruction:
    def test_round_trip_preserves_describe(self):
        for controller in CONTROLLERS:
            config = controller.describe()
            rebuilt = controller_from_config(config)
            assert type(rebuilt).__name__ == config["type"]

    def test_missing_type_raises(self):
        with pytest.raises(ObservabilityError):
            controller_from_config({"rho": 0.25})

    def test_unknown_type_raises(self):
        with pytest.raises(ObservabilityError, match="Imaginary"):
            controller_from_config({"type": "ImaginaryController"})

    def test_controller_from_trace_requires_run_start(self):
        with pytest.raises(ObservabilityError):
            controller_from_trace([])


class TestMismatchDetection:
    def test_tampered_trace_is_caught(self):
        from repro.obs import TraceEvent

        events = list(record_run(HybridController(0.25, m_max=64)))
        idx = next(
            i
            for i, e in enumerate(events)
            if e.kind == "step" and e.data["requested"] > 2
        )
        data = dict(events[idx].data)
        data["requested"] += 1  # corrupt one recorded decision
        events[idx] = TraceEvent(step=events[idx].step, kind="step", data=data)
        with pytest.raises(ReplayMismatchError, match="diverged at step"):
            verify_trace(events)

    def test_replay_with_explicit_controller_mismatch(self):
        events = record_run(HybridController(0.25, m_max=64))
        report = replay_decisions(events, controller=FixedController(3))
        assert not report.matches
        assert report.first_divergence() >= 0


class TestReplayController:
    def test_replays_fixed_sequence(self):
        rc = ReplayController([2, 4, 8])
        out = []
        for r in (0.1, 0.2, 0.3):
            out.append(rc.propose())
            rc.observe(r, out[-1])
        assert out == [2, 4, 8]
        assert rc.remaining == 0

    def test_exhaustion_raises(self):
        rc = ReplayController([2])
        rc.propose()
        rc.observe(0.0, 2)
        with pytest.raises(ReplayMismatchError):
            rc.propose()

    def test_reset_rewinds(self):
        rc = ReplayController([2, 3])
        rc.propose()
        rc.observe(0.0, 2)
        rc.reset()
        assert rc.propose() == 2

    def test_from_trace_drives_engine_identically(self):
        events = record_run(HybridController(0.25, m_max=64), engine_seed=99)
        ms, rs = trajectory(events)
        rc = ReplayController.from_trace(events)
        replay_events = record_run(rc, engine_seed=99)
        ms2, rs2 = trajectory(replay_events)
        assert np.array_equal(ms, ms2)
        assert np.array_equal(rs, rs2)  # same seed + same m_t => same run

    def test_empty_sequence_rejected(self):
        with pytest.raises(ObservabilityError):
            ReplayController([])
        with pytest.raises(ObservabilityError):
            ReplayController([0])


class TestTraceDiagnostics:
    def test_diagnose_recorded_hybrid_run(self):
        events = record_run(HybridController(0.25, m_max=64))
        diag = diagnose_trace(events)
        assert diag.controller_type == "HybridController"
        assert diag.steps == len(trajectory(events)[0])
        assert sum(u.count for u in diag.rule_usage.values()) > 0
        text = diag.render()
        assert "HybridController" in text and "final allocation" in text

    def test_multi_run_segment_rejected(self):
        events = record_run(FixedController(4)) + record_run(FixedController(4))
        with pytest.raises(ObservabilityError, match="split_runs"):
            diagnose_trace(events)
        for segment in split_runs(events):
            diagnose_trace(segment)  # per-segment works

    def test_headless_trace_rejected(self):
        with pytest.raises(ObservabilityError):
            diagnose_trace([])

    def test_plain_engine_trace_has_no_sweep_block(self):
        diag = diagnose_trace(record_run(FixedController(4)))
        assert diag.sweep is None
        assert "sweep" not in diag.render()

    def test_sweep_only_trace_diagnosed(self):
        from pathlib import Path

        from repro.obs import load_jsonl

        fixture = Path(__file__).parent / "fixtures" / "golden_sweep_fault_drill.jsonl"
        diag = diagnose_trace(load_jsonl(fixture))
        assert diag.steps == 0  # no engine run recorded in-process
        sweep = diag.sweep
        assert sweep is not None
        assert sweep.sweeps == 1 and sweep.configs == 2
        assert sweep.attempts == sweep.completed + sweep.failures
        assert sweep.failures == sweep.retries + sweep.quarantined
        assert "sweep:" in diag.render()

    def test_mixed_engine_and_sweep_trace(self):
        """An inline sweep interleaves engine events with sweep lifecycle."""
        from repro.obs import TraceEvent

        events = record_run(HybridController(0.25, m_max=64))
        sweep_events = [
            TraceEvent(step=0, kind="sweep_start", data={"configs": 1, "jobs": 1}),
            TraceEvent(
                step=1,
                kind="sweep_task_start",
                data={"experiment": "fig3", "seed": 5, "attempt": 0},
            ),
            TraceEvent(
                step=2,
                kind="sweep_task_complete",
                data={"experiment": "fig3", "cached": False, "reseeded": False},
            ),
        ]
        mixed = sweep_events[:2] + events + sweep_events[2:]
        diag = diagnose_trace(mixed)
        assert diag.controller_type == "HybridController"
        assert diag.steps > 0
        assert diag.sweep is not None
        assert diag.sweep.attempts == 1 and diag.sweep.completed == 1
        text = diag.render()
        assert "HybridController" in text and "sweep:" in text
