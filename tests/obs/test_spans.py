"""Tests for repro.obs.spans — hierarchical timing, sampling, merge."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_SPAN,
    SpanProfiler,
    activate_profiler,
    active_profiler,
    deactivate_profiler,
    profiling,
)
from repro.obs.spans import SNAPSHOT_SCHEMA


class TestSpanNesting:
    def test_paths_follow_the_open_stack(self):
        prof = SpanProfiler()
        with prof.span("step"):
            with prof.span("resolve"):
                with prof.span("kernel"):
                    pass
            with prof.span("commit"):
                pass
        assert sorted(prof.stats()) == [
            "step",
            "step/commit",
            "step/resolve",
            "step/resolve/kernel",
        ]
        assert prof.stats()["step"].count == 1

    def test_sibling_spans_aggregate_by_path(self):
        prof = SpanProfiler()
        for _ in range(3):
            with prof.span("step"):
                with prof.span("select"):
                    pass
        assert prof.stats()["step/select"].count == 3

    def test_parent_total_covers_children(self):
        prof = SpanProfiler()
        with prof.span("step"):
            with prof.span("a"):
                pass
            with prof.span("b"):
                pass
        step = prof.total_ns("step")
        assert step >= prof.total_ns("step/a") + prof.total_ns("step/b")

    def test_exception_still_records_and_pops(self):
        prof = SpanProfiler()
        with pytest.raises(RuntimeError):
            with prof.span("step"):
                with prof.span("resolve"):
                    raise RuntimeError("operator blew up")
        stats = prof.stats()
        assert stats["step"].count == 1
        assert stats["step/resolve"].count == 1
        # the open-path stack unwound: new spans root at the top again
        with prof.span("after"):
            pass
        assert "after" in prof.stats()

    def test_invalid_span_names_rejected(self):
        prof = SpanProfiler()
        with pytest.raises(ObservabilityError):
            prof.span("")
        with pytest.raises(ObservabilityError):
            prof.span("a/b")


class TestStepSampling:
    def test_sample_every_records_one_in_n(self):
        prof = SpanProfiler(sample_every=4)
        for step in range(12):
            with prof.step_span(step):
                with prof.span("resolve"):
                    pass
        assert prof.stats()["step"].count == 3  # steps 0, 4, 8
        assert prof.stats()["step/resolve"].count == 3

    def test_sampled_out_step_suppresses_nested_spans(self):
        prof = SpanProfiler(sample_every=2)
        with prof.step_span(1):  # 1 % 2 != 0: sampled out
            inner = prof.span("resolve")
            assert inner is NULL_SPAN
            with inner:
                pass
        assert len(prof) == 0

    def test_invalid_sample_every(self):
        with pytest.raises(ObservabilityError):
            SpanProfiler(sample_every=0)


class TestAddAndMerge:
    def test_add_credits_external_timing(self):
        prof = SpanProfiler()
        prof.add("sweep.attempt", 1_000, count=2)
        prof.add(("sweep.attempt",), 500)
        stat = prof.stats()["sweep.attempt"]
        assert stat.count == 3 and stat.total_ns == 1_500

    def test_add_rejects_bad_paths(self):
        prof = SpanProfiler()
        with pytest.raises(ObservabilityError):
            prof.add((), 1)
        with pytest.raises(ObservabilityError):
            prof.add(("a", ""), 1)

    def test_snapshot_round_trips_through_merge(self):
        src = SpanProfiler()
        with src.span("step"):
            with src.span("resolve"):
                pass
        dst = SpanProfiler()
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_merge_reroots_under_prefix(self):
        worker = SpanProfiler()
        with worker.span("step"):
            pass
        sup = SpanProfiler()
        sup.merge(worker.snapshot(), prefix=("sweep.worker",))
        assert list(sup.stats()) == ["sweep.worker/step"]

    def test_merge_accumulates_counts_and_extremes(self):
        sup = SpanProfiler()
        sup.merge(
            {
                "schema": SNAPSHOT_SCHEMA,
                "spans": {"w": {"count": 2, "total_ns": 10, "min_ns": 4, "max_ns": 6}},
            }
        )
        sup.merge(
            {
                "schema": SNAPSHOT_SCHEMA,
                "spans": {"w": {"count": 1, "total_ns": 9, "min_ns": 9, "max_ns": 9}},
            }
        )
        stat = sup.stats()["w"]
        assert stat.count == 3 and stat.total_ns == 19
        assert stat.min_ns == 4 and stat.max_ns == 9

    def test_merge_rejects_bad_payloads(self):
        prof = SpanProfiler()
        with pytest.raises(ObservabilityError):
            prof.merge({"spans": {}})  # missing schema
        with pytest.raises(ObservabilityError):
            prof.merge({"schema": 999, "spans": {}})
        with pytest.raises(ObservabilityError):
            prof.merge({"schema": SNAPSHOT_SCHEMA, "spans": {"x": {"count": 1}}})


class TestRender:
    def test_render_empty(self):
        assert SpanProfiler().render() == "spans: (none recorded)"

    def test_render_tree_shows_counts_and_shares(self):
        prof = SpanProfiler()
        with prof.span("step"):
            with prof.span("resolve"):
                pass
        text = prof.render()
        assert "step: 1x" in text and "resolve: 1x" in text
        assert text.startswith("spans:")


class TestActivePlumbing:
    def test_profiling_activates_and_restores(self):
        assert active_profiler() is None
        with profiling(sample_every=3) as prof:
            assert active_profiler() is prof
            assert prof.sample_every == 3
        assert active_profiler() is None

    def test_nested_profiling_restores_outer(self):
        with profiling() as outer:
            with profiling() as inner:
                assert active_profiler() is inner
            assert active_profiler() is outer

    def test_activate_rejects_non_profiler(self):
        with pytest.raises(ObservabilityError):
            activate_profiler("nope")

    def test_manual_activate_deactivate(self):
        prof = SpanProfiler()
        try:
            assert activate_profiler(prof) is prof
            assert active_profiler() is prof
        finally:
            deactivate_profiler()
        assert active_profiler() is None


class TestEngineIntegration:
    def test_engine_steps_open_phase_spans(self):
        from repro.control.fixed import FixedController
        from repro.graph.generators import gnm_random
        from repro.runtime.workloads import ReplayGraphWorkload

        wl = ReplayGraphWorkload(gnm_random(60, 4, seed=1))
        with profiling() as prof:
            engine = wl.build_engine(FixedController(8), seed=2, engine="fast")
            for _ in range(5):
                engine.step()
        stats = prof.stats()
        for phase in (
            "step",
            "step/controller.decide",
            "step/select",
            "step/resolve",
            "step/commit",
            "step/controller.update",
        ):
            assert stats[phase].count == 5, phase
        # the fast path's kernel span nests under resolve
        assert any(p.startswith("step/resolve/kernel.") for p in stats)

    def test_disabled_engine_records_nothing(self):
        from repro.control.fixed import FixedController
        from repro.graph.generators import gnm_random
        from repro.runtime.workloads import ReplayGraphWorkload

        wl = ReplayGraphWorkload(gnm_random(60, 4, seed=1))
        engine = wl.build_engine(FixedController(8), seed=2)
        assert engine.profiler is None
        engine.step()  # must not raise without any profiler
