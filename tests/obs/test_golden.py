"""Golden-trace regression test.

A checked-in JSONL fixture records a reference run of the paper's
Algorithm 1 (:class:`HybridController`) on a ``gnm_random(200, d=8)``
draining workload.  The test re-runs the identical workload and demands
*byte-identical* canonical JSONL — any change to the engine's step
semantics, the controller's decision rules, the event schema, or the
canonical serialisation shows up as a diff here.  The fixture must also
keep replaying deterministically after reload.

Regenerate (only after an intentional semantic change!) with::

    PYTHONPATH=src python -c "from tests.obs.test_golden import regenerate; regenerate()"
"""

from pathlib import Path

import numpy as np

from repro.control import HybridController
from repro.graph.generators import gnm_random
from repro.obs import TraceRecorder, load_jsonl, trajectory, verify_trace
from repro.runtime.workloads import ConsumingGraphWorkload

FIXTURE = Path(__file__).parent / "fixtures" / "golden_hybrid_gnm200_d8.jsonl"

GRAPH_SEED = 2011  # SPAA 2011
ENGINE_SEED = 8
MAX_STEPS = 60


def golden_trace() -> TraceRecorder:
    """The reference run: Algorithm 1 on gnm_random(200, d=8)."""
    rec = TraceRecorder()
    workload = ConsumingGraphWorkload(gnm_random(200, 8, seed=GRAPH_SEED))
    controller = HybridController(0.25, m_max=64)
    engine = workload.build_engine(controller, seed=ENGINE_SEED, recorder=rec)
    engine.run(max_steps=MAX_STEPS)
    return rec


def regenerate() -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    golden_trace().save_jsonl(FIXTURE)
    print(f"wrote {FIXTURE}")


class TestGoldenTrace:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), "golden fixture missing; run regenerate()"

    def test_rerun_is_byte_identical(self):
        fresh = golden_trace().to_jsonl()
        assert fresh == FIXTURE.read_text(encoding="utf-8"), (
            "golden trace drifted: engine/controller/serialisation semantics "
            "changed; if intentional, regenerate the fixture"
        )

    def test_fixture_replays_deterministically(self):
        events = load_jsonl(FIXTURE)
        reports = verify_trace(events)
        assert len(reports) == 1
        assert reports[0].controller_type == "HybridController"

    def test_fixture_matches_live_trajectory(self):
        events = load_jsonl(FIXTURE)
        ms_fixture, rs_fixture = trajectory(events)
        ms_live, rs_live = trajectory(golden_trace().events)
        assert np.array_equal(ms_fixture, ms_live)
        assert np.array_equal(rs_fixture, rs_live)

    def test_fixture_shape_sanity(self):
        events = load_jsonl(FIXTURE)
        kinds = [e.kind for e in events]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert 0 < kinds.count("step") == kinds.count("select") <= MAX_STEPS
        assert "decision" in kinds
        assert events[0].data["seed"] == ENGINE_SEED
        steps = [e for e in events if e.kind == "step"]
        total_committed = sum(e.data["committed"] for e in steps)
        assert total_committed == 200  # the whole workload drained
