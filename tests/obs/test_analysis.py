"""Tests for repro.obs.analysis — profiling, convergence, live progress."""

from pathlib import Path

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    SpanProfiler,
    SweepProgress,
    TraceEvent,
    convergence_report,
    load_jsonl,
    profile_report,
)
from repro.obs.events import (
    RUN_START,
    SWEEP_TASK_COMPLETE,
    SWEEP_TASK_FAILED,
    SWEEP_TASK_QUARANTINED,
    SWEEP_TASK_RETRY,
)

GOLDEN = Path(__file__).parent / "fixtures" / "golden_hybrid_gnm200_d8.jsonl"


# ----------------------------------------------------------------------
# profile_report
# ----------------------------------------------------------------------
def _synthetic_profiler() -> SpanProfiler:
    prof = SpanProfiler()
    prof.add("step", 1_000, count=10)
    prof.add("step/resolve", 600, count=10)
    prof.add("step/select", 300, count=10)
    prof.add("step/resolve/kernel", 550, count=10)  # grandchild: not a phase
    prof.add("other_root", 99)
    return prof


class TestProfileReport:
    def test_phases_are_direct_children_sorted_by_total(self):
        report = profile_report(_synthetic_profiler())
        assert report.root == "step" and report.steps == 10
        assert [p.name for p in report.phases] == ["resolve", "select"]
        assert report.critical_phase == "resolve"

    def test_shares_self_time_and_coverage(self):
        report = profile_report(_synthetic_profiler())
        assert report.wall_ns == 1_000
        assert report.phases[0].share == pytest.approx(0.6)
        assert report.self_ns == 100
        assert report.coverage == pytest.approx(0.9)

    def test_grandchildren_not_double_counted(self):
        report = profile_report(_synthetic_profiler())
        assert all(p.name != "kernel" for p in report.phases)

    def test_render_mentions_every_phase(self):
        text = profile_report(_synthetic_profiler()).render()
        assert "resolve" in text and "select" in text and "(self)" in text

    def test_missing_root_raises(self):
        with pytest.raises(ObservabilityError, match="no 'step' spans"):
            profile_report(SpanProfiler())

    def test_rejects_non_profiler(self):
        with pytest.raises(ObservabilityError):
            profile_report({"step": 1})

    def test_report_from_live_engine_covers_wall_clock(self):
        """Acceptance: the phases explain >= 95% of the step span."""
        from repro.control.fixed import FixedController
        from repro.graph.generators import gnm_random
        from repro.obs import profiling
        from repro.runtime.workloads import ReplayGraphWorkload

        wl = ReplayGraphWorkload(gnm_random(500, 8, seed=4))
        with profiling() as prof:
            engine = wl.build_engine(FixedController(250), seed=3, engine="fast")
            for _ in range(30):
                engine.step()
        report = profile_report(prof)
        assert report.steps == 30
        assert report.coverage >= 0.95


# ----------------------------------------------------------------------
# convergence_report
# ----------------------------------------------------------------------
def _synthetic_run(ratios, rho=0.2, launched=100):
    events = [
        TraceEvent(
            step=0,
            kind=RUN_START,
            data={"controller": {"type": "FakeController", "rho": rho}},
        )
    ]
    for t, r in enumerate(ratios):
        events.append(
            TraceEvent(
                step=t,
                kind="step",
                data={"aborted": int(round(r * launched)), "launched": launched},
            )
        )
    return events


class TestConvergenceReport:
    def test_golden_fixture_is_deterministic(self):
        """The report is a pure function of the recorded events."""
        report = convergence_report(load_jsonl(GOLDEN))
        assert report.rho == 0.25  # from the run_start controller config
        assert report.steps == 19
        assert report.settled and report.settling_step == 9
        assert report.tracking_error == pytest.approx(0.02654547694105648)
        assert report.decisions == 4
        assert report.decisions_by_rule == {"A": 1, "B": 1, "hold": 2}
        assert report.clamps == 0
        assert convergence_report(load_jsonl(GOLDEN)) == report

    def test_settles_once_band_holds_to_the_end(self):
        # in band from the start: settles at the first step
        report = convergence_report(_synthetic_run([0.2] * 10), window=1)
        assert report.settling_step == 0
        assert report.tracking_error == pytest.approx(0.0)

    def test_late_excursion_resets_settling(self):
        ratios = [0.2] * 8 + [0.9] + [0.2] * 3
        report = convergence_report(_synthetic_run(ratios), window=1)
        assert report.settling_step == 9  # first step after the excursion

    def test_never_settled_reports_tail_error(self):
        report = convergence_report(_synthetic_run([0.9] * 10), window=1)
        assert not report.settled
        assert report.tracking_error == pytest.approx(0.7)
        assert "never settled" in report.render()

    def test_explicit_rho_overrides_recorded(self):
        report = convergence_report(_synthetic_run([0.9] * 10), rho=0.9, window=1)
        assert report.settled

    def test_no_rho_anywhere_raises(self):
        events = _synthetic_run([0.2] * 4)
        events[0] = TraceEvent(step=0, kind=RUN_START, data={"controller": {}})
        with pytest.raises(ObservabilityError, match="no rho target"):
            convergence_report(events)

    def test_no_steps_raises(self):
        with pytest.raises(ObservabilityError, match="no step events"):
            convergence_report(_synthetic_run([]))

    def test_parameter_validation(self):
        events = _synthetic_run([0.2] * 4)
        with pytest.raises(ObservabilityError):
            convergence_report(events, window=0)
        with pytest.raises(ObservabilityError):
            convergence_report(events, epsilon=0.0)

    def test_second_run_ignored(self):
        first = _synthetic_run([0.2] * 6)
        second = _synthetic_run([0.9] * 6)
        report = convergence_report(first + second, window=1)
        assert report.steps == 6 and report.settled


# ----------------------------------------------------------------------
# SweepProgress
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSweepProgress:
    def _progress(self, total=4, **kw):
        self.lines = []
        self.clock = FakeClock()
        return SweepProgress(
            total, sink=self.lines.append, clock=self.clock, **kw
        )

    def test_counts_lifecycle_events(self):
        prog = self._progress()
        prog.on_event(SWEEP_TASK_COMPLETE, {})
        prog.on_event(SWEEP_TASK_RETRY, {})
        prog.on_event(SWEEP_TASK_FAILED, {})
        prog.on_event(SWEEP_TASK_QUARANTINED, {})
        prog.on_event("sweep_start", {})  # unknown-to-the-counter kinds ignored
        assert prog.completed == 1 and prog.retried == 1
        assert prog.failures == 1 and prog.quarantined == 1
        assert prog.remaining == 2

    def test_ewma_and_eta(self):
        prog = self._progress(total=5, jobs=2)
        prog.note_attempt_seconds(10.0)
        assert prog.ewma_attempt_seconds == 10.0
        prog.note_attempt_seconds(20.0)
        assert prog.ewma_attempt_seconds == pytest.approx(13.0)  # 0.3*20 + 0.7*10
        assert prog.eta_seconds() == pytest.approx(13.0 * 5 / 2)

    def test_eta_none_without_latency_or_work(self):
        prog = self._progress(total=1)
        assert prog.eta_seconds() is None
        prog.note_attempt_seconds(1.0)
        prog.on_event(SWEEP_TASK_COMPLETE, {})
        assert prog.remaining == 0 and prog.eta_seconds() is None

    def test_emits_are_rate_limited(self):
        prog = self._progress(total=2, interval=5.0)
        assert prog.maybe_emit() is not None  # first emit always fires
        self.clock.now = 3.0
        assert prog.maybe_emit() is None  # too soon
        self.clock.now = 6.0
        assert prog.maybe_emit() is not None
        assert prog.maybe_emit(force=True) is not None
        assert len(self.lines) == 3

    def test_status_line_contents(self):
        prog = self._progress(total=3)
        prog.on_event(SWEEP_TASK_COMPLETE, {})
        prog.note_attempt_seconds(2.0)
        line = prog.status_line()
        assert "sweep: 1/3 done" in line
        assert "0 retried" in line and "0 quarantined" in line
        assert "attempt EWMA 2.00s" in line and "ETA" in line

    def test_validation(self):
        with pytest.raises(ObservabilityError):
            SweepProgress(-1)
        with pytest.raises(ObservabilityError):
            SweepProgress(1, interval=-0.1)
