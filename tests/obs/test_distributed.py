"""Tests for :mod:`repro.obs.distributed` — the cross-process layer.

Three tiers:

* **Units** — run ids, source tags, :class:`TraceContext`,
  :func:`merge_traces` causal placement and its error surface,
  :class:`ShardProgress` (driven by a fake clock/sink, no sleeping),
  :class:`TelemetryBus` fan-out and the flight-recorder salvage /
  :func:`diagnose_crash` pairing logic.
* **Property** — merging is a pure function of stream *contents*:
  every permutation of the input streams yields the same merged trace,
  on synthetic streams (hypothesis) and on real run output alike.
* **End-to-end** — a process-backed 2-shard run with ``trace_dir`` set
  produces per-shard streams that merge into one causally ordered trace
  which (a) replays deterministically via :func:`repro.obs.verify_trace`
  and (b) is byte-identical across repeat runs.  A checked-in golden
  fixture pins the merged bytes (regenerate only after an intentional
  semantic change, and only under ``REPRO_TEST_SEED=0``)::

      PYTHONPATH=src python -c "from tests.obs.test_distributed import regenerate; regenerate()"
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RunConfig
from repro.control.fixed import FixedController
from repro.errors import ObservabilityError
from repro.graph.generators import gnm_random
from repro.obs import TraceRecorder, load_jsonl, load_jsonl_meta, verify_trace
from repro.obs.distributed import (
    CrashReport,
    FlightRecorder,
    ShardProgress,
    TelemetryBus,
    TraceContext,
    diagnose_crash,
    flight_incarnation,
    flight_round_begin,
    flight_round_end,
    merge_trace_files,
    merge_traces,
    new_run_id,
    parse_shard_source,
    shard_source,
    write_trace,
)
from repro.obs.events import HALO_EXCHANGE, ORDER_DECISION, SHARD_ROUND, TraceEvent
from repro.obs.metrics import MetricsRegistry, labelled
from repro.obs.spans import SpanProfiler
from repro.runtime.sharded import run_sharded

BASE_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))
GRAPH_SEED = 2011
ENGINE_SEED = 8 + BASE_SEED
MAX_STEPS = 20

FIXTURE = Path(__file__).parent / "fixtures" / "golden_merged_sharded2.jsonl"


# ----------------------------------------------------------------------
# units: identity helpers
# ----------------------------------------------------------------------
class TestRunId:
    def test_derived_id_is_deterministic(self):
        assert new_run_id("a", 1, 2.5) == new_run_id("a", 1, 2.5)

    def test_derived_id_depends_on_parts(self):
        assert new_run_id("a", 1) != new_run_id("a", 2)

    def test_random_ids_differ(self):
        assert new_run_id() != new_run_id()

    def test_shape(self):
        for run_id in (new_run_id(), new_run_id("x")):
            assert len(run_id) == 12
            int(run_id, 16)  # hex


class TestShardSource:
    def test_roundtrip(self):
        assert parse_shard_source(shard_source(3)) == 3

    @pytest.mark.parametrize("bad", ["supervisor", "shard:x", "", None, 7])
    def test_non_shard_sources(self, bad):
        assert parse_shard_source(bad) is None


class TestTraceContext:
    def test_seq_starts_at_one_and_increments(self):
        ctx = TraceContext("r")
        assert ctx.seq == 0
        assert [ctx.next_seq() for _ in range(3)] == [1, 2, 3]
        assert ctx.seq == 3

    def test_run_id_stringified(self):
        assert TraceContext(42).run_id == "42"
        assert TraceContext().run_id is None


# ----------------------------------------------------------------------
# units: merging
# ----------------------------------------------------------------------
def _sup_stream(seqs, run_id="r"):
    events = [TraceEvent(step=0, kind="run_start", data={})]
    for i, seq in enumerate(seqs):
        events.append(
            TraceEvent(step=i, kind=ORDER_DECISION, data={"seq": seq})
        )
    events.append(TraceEvent(step=len(seqs), kind="run_end", data={}))
    return events, {"source": "supervisor", "run_id": run_id}


def _shard_stream(shard, seqs, run_id="r"):
    events = [
        TraceEvent(
            step=i,
            kind=SHARD_ROUND,
            data={"src": shard_source(shard), "seq": seq},
        )
        for i, seq in enumerate(seqs)
    ]
    return events, {"source": shard_source(shard), "run_id": run_id}


class TestMergeTraces:
    def test_shard_events_precede_their_supervisor_event(self):
        merged, meta = merge_traces(
            [_sup_stream([1, 2]), _shard_stream(0, [1, 2]), _shard_stream(1, [1, 2])]
        )
        kinds = [(e.kind, e.get("seq"), e.data.get("src")) for e in merged]
        assert kinds == [
            ("run_start", None, None),
            (SHARD_ROUND, 1, "shard:0"),
            (SHARD_ROUND, 1, "shard:1"),
            (ORDER_DECISION, 1, None),
            (SHARD_ROUND, 2, "shard:0"),
            (SHARD_ROUND, 2, "shard:1"),
            (ORDER_DECISION, 2, None),
            ("run_end", None, None),
        ]
        assert meta["source"] == "merged"
        assert meta["streams"] == 3
        assert meta["shards"] == [0, 1]
        assert meta["run_id"] == "r"

    def test_orphan_rounds_flush_at_the_end(self):
        # the worker served seq 3 but the supervisor died before
        # recording it: the round's events must still appear, after the
        # supervisor backbone
        merged, _ = merge_traces([_sup_stream([1]), _shard_stream(0, [1, 3])])
        assert [e.get("seq") for e in merged] == [None, 1, 1, None, 3]

    def test_supervisor_source_tag_optional(self):
        events, _ = _sup_stream([1])
        shard_events, _ = _shard_stream(0, [1])
        merged, meta = merge_traces(
            [(events, {}), (shard_events, {"source": "shard:0"})]
        )
        assert len(merged) == 4
        assert "run_id" not in meta  # no stream carried one

    def test_no_streams_rejected(self):
        with pytest.raises(ObservabilityError, match="no streams"):
            merge_traces([])

    def test_two_supervisors_rejected(self):
        with pytest.raises(ObservabilityError, match="more than one supervisor"):
            merge_traces([_sup_stream([1]), _sup_stream([1])])

    def test_missing_supervisor_rejected(self):
        with pytest.raises(ObservabilityError, match="backbone"):
            merge_traces([_shard_stream(0, [1])])

    def test_unknown_source_rejected(self):
        events, _ = _sup_stream([1])
        with pytest.raises(ObservabilityError, match="cannot merge"):
            merge_traces([(events, {"source": "gateway"})])

    def test_duplicate_shard_rejected(self):
        with pytest.raises(ObservabilityError, match="duplicate"):
            merge_traces(
                [_sup_stream([1]), _shard_stream(0, [1]), _shard_stream(0, [1])]
            )

    def test_run_id_disagreement_rejected(self):
        with pytest.raises(ObservabilityError, match="disagree on run_id"):
            merge_traces(
                [_sup_stream([1], run_id="a"), _shard_stream(0, [1], run_id="b")]
            )

    def test_shard_event_without_seq_rejected(self):
        bare = [TraceEvent(step=0, kind=SHARD_ROUND, data={})]
        with pytest.raises(ObservabilityError, match="no 'seq'"):
            merge_traces(
                [_sup_stream([1]), (bare, {"source": "shard:0", "run_id": "r"})]
            )

    @settings(max_examples=30, deadline=None)
    @given(
        shard_rounds=st.lists(
            st.lists(st.integers(min_value=1, max_value=9), max_size=6),
            min_size=1,
            max_size=4,
        ),
        data=st.data(),
    )
    def test_merge_is_order_invariant(self, shard_rounds, data):
        """Permuting the input streams cannot change the merged trace."""
        streams = [_sup_stream([1, 2, 3, 4])] + [
            _shard_stream(shard, sorted(seqs))
            for shard, seqs in enumerate(shard_rounds)
        ]
        perm = data.draw(st.permutations(streams))
        reference, ref_meta = merge_traces(streams)
        permuted, perm_meta = merge_traces(perm)
        assert permuted == reference
        assert perm_meta == ref_meta


class TestTraceFiles:
    def test_write_then_merge_files(self, tmp_path):
        paths = []
        for name, stream in [
            ("sup", _sup_stream([1])),
            ("s0", _shard_stream(0, [1])),
        ]:
            events, meta = stream
            paths.append(write_trace(tmp_path / f"{name}.jsonl", events, meta))
        out = tmp_path / "merged.jsonl"
        events, meta = merge_trace_files(paths, out=out)
        loaded_events, loaded_meta = load_jsonl_meta(out)
        assert loaded_meta["source"] == "merged"
        assert [e.kind for e in loaded_events] == [e.kind for e in events]

    def test_meta_line_invisible_to_plain_loader(self, tmp_path):
        events, meta = _sup_stream([1])
        path = write_trace(tmp_path / "t.jsonl", events, meta)
        assert len(load_jsonl(path)) == len(events)

    def test_write_trace_without_meta(self, tmp_path):
        events, _ = _sup_stream([1])
        path = write_trace(tmp_path / "t.jsonl", events)
        loaded, meta = load_jsonl_meta(path)
        assert len(loaded) == len(events)
        assert not meta


# ----------------------------------------------------------------------
# units: live progress
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestShardProgress:
    def _monitor(self, interval=5.0):
        clock, lines = _FakeClock(), []
        mon = ShardProgress(2, interval=interval, sink=lines.append, clock=clock)
        return mon, clock, lines

    def test_rate_limits_to_interval(self):
        mon, clock, lines = self._monitor()
        mon.on_round([4, 4], [3, 2], halo_aborts=1)
        assert mon.maybe_emit() is not None  # first emit always fires
        mon.on_round([4, 4], [4, 4])
        clock.now = 4.0
        assert mon.maybe_emit() is None  # inside the interval
        clock.now = 5.0
        assert mon.maybe_emit() is not None
        assert len(lines) == 2

    def test_force_bypasses_rate_limit(self):
        mon, _, lines = self._monitor()
        mon.on_round([1, 1], [1, 1])
        mon.maybe_emit()
        assert mon.maybe_emit(force=True) is not None
        assert len(lines) == 2

    def test_status_line_reports_totals_and_skew(self):
        mon, _, _ = self._monitor()
        mon.on_round([10, 10], [9, 3], halo_aborts=2)
        mon.note_halo_wait_seconds(0.004)
        line = mon.status_line()
        assert "launched 20" in line
        assert "committed 12" in line
        assert "halo aborts 2" in line
        assert "max 0.90/min 0.30" in line
        assert "halo wait EWMA 4.0ms" in line

    def test_halo_wait_ewma(self):
        mon, _, _ = self._monitor()
        mon.note_halo_wait_seconds(1.0)
        mon.note_halo_wait_seconds(0.0)
        assert mon.ewma_halo_wait_seconds == pytest.approx(0.7)

    def test_skew_of_idle_monitor(self):
        mon, _, _ = self._monitor()
        assert mon.skew() == (0.0, 0.0)

    def test_shard_count_mismatch_rejected(self):
        mon, _, _ = self._monitor()
        with pytest.raises(ObservabilityError, match="2-shard"):
            mon.on_round([1, 2, 3], [1, 2, 3])

    @pytest.mark.parametrize("kwargs", [{"shards": 0}, {"shards": 2, "interval": -1}])
    def test_bad_construction_rejected(self, kwargs):
        with pytest.raises(ObservabilityError):
            ShardProgress(**kwargs)


# ----------------------------------------------------------------------
# units: telemetry bus
# ----------------------------------------------------------------------
def _round_telem(shard, seq, **data):
    payload = {"src": shard_source(shard), "seq": seq, **data}
    return {
        "events": [{"step": seq - 1, "kind": SHARD_ROUND, "data": payload}],
        "spans": None,
    }


class TestTelemetryBus:
    def test_ingest_buffers_events_per_shard(self):
        bus = TelemetryBus(2, run_id="r", trace_dir="unused")
        bus.ingest(0, _round_telem(0, 1))
        bus.ingest(1, _round_telem(1, 1))
        events, meta = bus.shard_stream(0)
        assert [e.get("seq") for e in events] == [1]
        assert meta == {"source": "shard:0", "run_id": "r"}

    def test_capacity_bounds_buffer_and_counts_drops(self):
        bus = TelemetryBus(1, trace_dir="unused", capacity=2)
        for seq in range(1, 5):
            bus.ingest(0, _round_telem(0, seq))
        events, meta = bus.shard_stream(0)
        assert [e.get("seq") for e in events] == [3, 4]  # ring kept the tail
        assert meta["dropped"] == 2
        assert meta["capacity"] == 2

    def test_ingest_without_channels_is_a_no_op(self):
        bus = TelemetryBus(1)
        bus.ingest(0, _round_telem(0, 1))
        assert not bus.wants_events and not bus.wants_spans
        events, _ = bus.shard_stream(0)
        assert events == []

    def test_note_round_feeds_labelled_metrics(self):
        registry = MetricsRegistry()
        bus = TelemetryBus(2, metrics=registry)
        bus.note_round(
            {"launched": [8, 8], "committed": [8, 2], "halo_aborts": 6},
            halo_wait_seconds=0.001,
        )
        snap = registry.snapshot()
        assert snap[labelled("shard.launched", shard=0)] == 8
        assert snap[labelled("shard.committed", shard=1)] == 2
        assert snap["shard.halo_aborts"] == 6
        assert snap["shard.commit_rate_max"] == 1.0
        assert snap["shard.commit_rate_min"] == 0.25

    def test_worker_spans_merge_under_prefix(self):
        profiler = SpanProfiler()
        bus = TelemetryBus(1, profiler=profiler)
        worker = SpanProfiler()
        worker.add("resolve", 500)
        bus.ingest(0, {"events": [], "spans": worker.snapshot()})
        bus.note_round(
            {"launched": [4], "committed": [4]}, round_seconds=1e-6
        )
        stats = profiler.stats()
        assert stats["shard.worker/resolve"].total_ns == 500
        assert stats["shard.round"].count == 1

    def test_note_round_drives_monitor(self):
        clock, lines = _FakeClock(), []
        mon = ShardProgress(2, interval=0.0, sink=lines.append, clock=clock)
        bus = TelemetryBus(2, monitor=mon)
        bus.note_round({"launched": [4, 4], "committed": [3, 4]})
        assert mon.rounds == 1 and lines

    def test_close_writes_one_stream_per_shard(self, tmp_path):
        bus = TelemetryBus(2, run_id="r", trace_dir=tmp_path)
        bus.ingest(0, _round_telem(0, 1))
        paths = bus.close()
        assert [p.name for p in paths] == ["shard-0.jsonl", "shard-1.jsonl"]
        events, meta = load_jsonl_meta(paths[0])
        assert meta["source"] == "shard:0" and len(events) == 1
        # the empty shard still writes its (empty) stream
        events, _ = load_jsonl_meta(paths[1])
        assert events == []

    def test_write_traces_needs_trace_dir(self):
        with pytest.raises(ObservabilityError, match="trace_dir"):
            TelemetryBus(1).write_traces()

    @pytest.mark.parametrize("kwargs", [{"shards": 0}, {"shards": 1, "capacity": 0}])
    def test_bad_construction_rejected(self, kwargs):
        with pytest.raises(ObservabilityError):
            TelemetryBus(**kwargs)


# ----------------------------------------------------------------------
# units: flight recorder
# ----------------------------------------------------------------------
def _spill(recorder: FlightRecorder, shard: int, records) -> None:
    path = recorder.spill_path(shard)
    path.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        encoding="utf-8",
    )


class TestFlightRecorder:
    def test_salvage_and_diagnose_mid_round_death(self, tmp_path):
        rec = FlightRecorder(tmp_path, "run1", 2)
        _spill(
            rec,
            1,
            [
                flight_incarnation("run1", 1, 0),
                flight_round_begin(0, 1, 33, 0),
                flight_round_end(0, 33, 30),
                flight_round_begin(4, 5, 17, 0),
            ],
        )
        bundle = rec.salvage(1, reason="signal: killed", attempt=0)
        assert bundle == rec.bundle_path(1)
        assert rec.salvaged == [bundle]
        report = diagnose_crash(bundle)
        assert isinstance(report, CrashReport)
        assert (report.shard, report.run_id) == (1, "run1")
        assert report.reason == "signal: killed"
        assert (report.rounds_started, report.rounds_completed) == (2, 1)
        assert report.died_mid_round
        assert (report.last_step, report.last_seq) == (4, 5)
        assert report.open_spans == ("shard.round",)

    def test_clean_death_between_rounds(self, tmp_path):
        rec = FlightRecorder(tmp_path, "run1", 1)
        _spill(
            rec,
            0,
            [
                flight_incarnation("run1", 0, 0),
                flight_round_begin(0, 1, 8, 0),
                flight_round_end(0, 8, 8, spans={"resolve": 1}),
            ],
        )
        report = diagnose_crash(rec.salvage(0, reason="timeout", attempt=0))
        assert not report.died_mid_round
        assert report.open_spans == ()
        assert report.spans == {"resolve": 1}

    def test_new_incarnation_abandons_open_round(self, tmp_path):
        # the respawn's incarnation record closes its predecessor's round:
        # only a begin *after* the latest incarnation counts as open
        rec = FlightRecorder(tmp_path, "run1", 1)
        _spill(
            rec,
            0,
            [
                flight_incarnation("run1", 0, 0),
                flight_round_begin(0, 1, 8, 0),
                flight_incarnation("run1", 0, 1),
            ],
        )
        report = diagnose_crash(rec.salvage(0, reason="crash", attempt=1))
        assert report.died_mid_round  # one begun, none completed...
        assert report.open_spans == ()  # ...but nothing open at *this* death

    def test_salvage_keeps_only_the_tail(self, tmp_path):
        rec = FlightRecorder(tmp_path, "run1", 1)
        _spill(
            rec,
            0,
            [flight_round_begin(s, s + 1, 1, 0) for s in range(10)],
        )
        bundle = rec.salvage(0, reason="crash", attempt=0, tail=3)
        head = json.loads(bundle.read_text(encoding="utf-8").splitlines()[0])
        assert head["flight_bundle"]["salvaged_lines"] == 3
        assert head["flight_bundle"]["total_lines"] == 10

    def test_salvage_of_missing_spill_yields_empty_bundle(self, tmp_path):
        # died before writing anything: the bundle still names the failure
        rec = FlightRecorder(tmp_path, "run1", 1)
        report = diagnose_crash(rec.salvage(0, reason="spawn died", attempt=0))
        assert report.rounds_started == 0
        assert report.tail == ()

    def test_render_names_the_essentials(self, tmp_path):
        rec = FlightRecorder(tmp_path, "run9", 1)
        _spill(rec, 0, [flight_round_begin(7, 3, 5, 2)])
        text = diagnose_crash(rec.salvage(0, reason="crash", attempt=2)).render()
        assert "shard 0" in text and "run9" in text
        assert "reason: crash" in text
        assert "step 7, seq 3" in text
        assert "open spans at death: shard.round" in text

    def test_diagnose_missing_bundle_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no flight bundle"):
            diagnose_crash(tmp_path / "nope.jsonl")

    def test_diagnose_malformed_bundle_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"flight_bundle": {}}\nnot json\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="malformed"):
            diagnose_crash(bad)

    def test_diagnose_headless_bundle_rejected(self, tmp_path):
        headless = tmp_path / "headless.jsonl"
        headless.write_text(
            json.dumps(flight_round_begin(0, 1, 1, 0)) + "\n", encoding="utf-8"
        )
        with pytest.raises(ObservabilityError, match="flight_bundle"):
            diagnose_crash(headless)


# ----------------------------------------------------------------------
# end-to-end: process-backed runs
# ----------------------------------------------------------------------
def _distributed_run(trace_dir: Path, shards: int = 2):
    """One traced sharded run; returns (supervisor jsonl, result)."""
    recorder = TraceRecorder()
    run_id = new_run_id("test", GRAPH_SEED, ENGINE_SEED, shards)
    config = RunConfig(
        workload="consuming",
        rho=0.25,
        m_max=64,
        order=f"sharded:{shards}",
        max_steps=MAX_STEPS,
    )
    result = run_sharded(
        config,
        gnm_random(200, 8, seed=GRAPH_SEED),
        seed=ENGINE_SEED,
        recorder=recorder,
        run_id=run_id,
        trace_dir=trace_dir,
    )
    write_trace(
        trace_dir / "supervisor.jsonl",
        recorder.events,
        {"source": "supervisor", "run_id": run_id},
    )
    return recorder.to_jsonl(), result


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("dist-trace")
    supervisor_jsonl, result = _distributed_run(trace_dir)
    return trace_dir, supervisor_jsonl, result


def _stream_paths(trace_dir: Path) -> "list[Path]":
    return sorted(trace_dir.glob("shard-*.jsonl")) + [
        trace_dir / "supervisor.jsonl"
    ]


class TestDistributedRunEndToEnd:
    def test_every_stream_written_and_tagged(self, traced_run):
        trace_dir, _, _ = traced_run
        paths = _stream_paths(trace_dir)
        assert [p.name for p in paths] == [
            "shard-0.jsonl",
            "shard-1.jsonl",
            "supervisor.jsonl",
        ]
        sources = {load_jsonl_meta(p)[1]["source"] for p in paths}
        assert sources == {"shard:0", "shard:1", "supervisor"}
        run_ids = {load_jsonl_meta(p)[1]["run_id"] for p in paths}
        assert len(run_ids) == 1

    def test_merged_trace_replays_deterministically(self, traced_run, tmp_path):
        trace_dir, _, result = traced_run
        merged, meta = merge_trace_files(
            _stream_paths(trace_dir), out=tmp_path / "merged.jsonl"
        )
        assert meta["shards"] == [0, 1]
        reports = verify_trace(load_jsonl(tmp_path / "merged.jsonl"))
        assert sum(r.steps for r in reports) == len(result)

    def test_worker_rounds_sit_before_their_order_decision(self, traced_run):
        trace_dir, _, _ = traced_run
        merged, _ = merge_traces(
            load_jsonl_meta(p) for p in _stream_paths(trace_dir)
        )
        last_seen = {}
        for i, event in enumerate(merged):
            seq = event.get("seq")
            if seq is None:
                continue
            if event.kind == SHARD_ROUND:
                last_seen.setdefault(seq, i)
            elif event.kind in (ORDER_DECISION, HALO_EXCHANGE):
                if seq in last_seen:
                    assert last_seen[seq] < i
        assert last_seen  # multi-shard rounds actually happened

    def test_repeat_run_is_byte_identical(self, traced_run, tmp_path):
        trace_dir, supervisor_jsonl, _ = traced_run
        repeat_dir = tmp_path / "repeat"
        repeat_jsonl, _ = _distributed_run(repeat_dir)
        assert repeat_jsonl == supervisor_jsonl
        for name in ("shard-0.jsonl", "shard-1.jsonl"):
            assert (repeat_dir / name).read_bytes() == (
                trace_dir / name
            ).read_bytes()

    def test_real_streams_merge_order_invariant(self, traced_run):
        trace_dir, _, _ = traced_run
        streams = [load_jsonl_meta(p) for p in _stream_paths(trace_dir)]
        reference, _ = merge_traces(streams)
        for perm in itertools.permutations(streams):
            merged, _ = merge_traces(perm)
            assert merged == reference


class TestGoldenMergedTrace:
    """The merged 2-shard trace, pinned byte-for-byte.

    Seeds derive from ``REPRO_TEST_SEED`` so the module's other tests
    run under every flaky-hunter seed, but the fixture is only defined
    for the default seed — skip elsewhere.
    """

    pytestmark = pytest.mark.skipif(
        BASE_SEED != 0, reason="golden fixture is pinned to REPRO_TEST_SEED=0"
    )

    def test_fixture_exists(self):
        assert FIXTURE.exists(), "golden fixture missing; run regenerate()"

    def test_merged_trace_matches_fixture(self, traced_run, tmp_path):
        trace_dir, _, _ = traced_run
        out = tmp_path / "merged.jsonl"
        merge_trace_files(_stream_paths(trace_dir), out=out)
        assert out.read_text(encoding="utf-8") == FIXTURE.read_text(
            encoding="utf-8"
        ), (
            "merged distributed trace drifted: round/seq assignment, event "
            "schema or serialisation changed; if intentional, regenerate"
        )

    def test_fixture_replays_deterministically(self):
        reports = verify_trace(load_jsonl(FIXTURE))
        assert len(reports) == 1


def regenerate() -> None:
    """Rewrite the golden merged-trace fixture (REPRO_TEST_SEED=0 only)."""
    import tempfile

    if BASE_SEED != 0:
        raise SystemExit("regenerate only under REPRO_TEST_SEED=0")
    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(tmp)
        _distributed_run(trace_dir)
        FIXTURE.parent.mkdir(parents=True, exist_ok=True)
        merge_trace_files(_stream_paths(trace_dir), out=FIXTURE)
    print(f"wrote {FIXTURE}")
