"""Tests for repro.obs.export — OpenMetrics text and lossless JSON."""

import json
import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    render_openmetrics,
    restore_registry,
    snapshot_registry,
    write_telemetry,
)


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("engine.steps").inc(10)
    reg.gauge("engine.m").set(16)
    h = reg.histogram("engine.conflict_ratio")
    for x in (0.1, 0.4, 0.25, 0.9, 0.0):
        h.observe(x)
    return reg


class TestOpenMetrics:
    def test_counter_and_gauge_lines(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE engine_steps counter" in text
        assert "engine_steps_total 10" in text
        assert "# TYPE engine_m gauge" in text
        assert "engine_m 16" in text

    def test_histogram_series_is_cumulative_and_closed(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE engine_conflict_ratio histogram" in text
        assert 'engine_conflict_ratio_bucket{le="+Inf"} 5' in text
        assert "engine_conflict_ratio_count 5" in text
        # cumulative counts never decrease along the series
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("engine_conflict_ratio_bucket")
        ]
        assert counts == sorted(counts)

    def test_ends_with_eof(self):
        assert render_openmetrics(MetricsRegistry()).endswith("# EOF\n")

    def test_unset_gauge_renders_nan(self):
        reg = MetricsRegistry()
        reg.gauge("m")
        assert "m NaN" in render_openmetrics(reg)

    def test_names_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("sweep.tasks-completed").inc()
        assert "sweep_tasks_completed_total 1" in render_openmetrics(reg)

    def test_deterministic(self):
        reg = _populated_registry()
        assert render_openmetrics(reg) == render_openmetrics(reg)


class TestJsonRoundTrip:
    def test_render_identical_after_json_round_trip(self):
        reg = _populated_registry()
        wire = json.dumps(snapshot_registry(reg), sort_keys=True)
        restored = restore_registry(json.loads(wire))
        assert restored.render() == reg.render()

    def test_openmetrics_identical_after_round_trip(self):
        reg = _populated_registry()
        restored = restore_registry(json.loads(json.dumps(snapshot_registry(reg))))
        assert render_openmetrics(restored) == render_openmetrics(reg)

    def test_histogram_quantiles_survive(self):
        reg = _populated_registry()
        restored = restore_registry(json.loads(json.dumps(snapshot_registry(reg))))
        orig = reg.histogram("engine.conflict_ratio")
        back = restored.histogram("engine.conflict_ratio")
        for q in (0.5, 0.95, 0.99):
            assert back.quantile(q) == orig.quantile(q)

    def test_non_finite_gauge_round_trips(self):
        reg = MetricsRegistry()
        reg.gauge("unset")
        reg.gauge("hot").set(math.inf)
        wire = json.dumps(snapshot_registry(reg))
        restored = restore_registry(json.loads(wire))
        assert math.isnan(restored.gauge("unset").value)
        assert restored.gauge("hot").value == math.inf

    def test_snapshot_is_strict_json(self):
        reg = MetricsRegistry()
        reg.gauge("unset")  # NaN would poison naive serialisation
        json.dumps(snapshot_registry(reg), allow_nan=False)

    def test_restore_rejects_bad_payloads(self):
        with pytest.raises(ObservabilityError):
            restore_registry({"metrics": {}})  # missing schema
        with pytest.raises(ObservabilityError):
            restore_registry({"schema": 999, "metrics": {}})
        with pytest.raises(ObservabilityError):
            restore_registry(
                {"schema": 1, "metrics": {"x": {"kind": "teapot", "value": 1}}}
            )
        with pytest.raises(ObservabilityError):
            restore_registry(
                {"schema": 1, "metrics": {"x": {"kind": "counter"}}}
            )


class TestWriteTelemetry:
    def test_writes_both_files(self, tmp_path):
        reg = _populated_registry()
        prom, js = write_telemetry(tmp_path / "out" / "telemetry", reg)
        assert prom.name == "telemetry.prom" and js.name == "telemetry.json"
        assert prom.read_text(encoding="utf-8") == render_openmetrics(reg)
        snapshot = json.loads(js.read_text(encoding="utf-8"))
        assert restore_registry(snapshot).render() == reg.render()
