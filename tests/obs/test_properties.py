"""Property-based tests of the observability invariants (hypothesis).

Three properties pin down the contracts the replayer relies on:

* every recorded step partitions its launches exactly into commits and
  aborts;
* a controller's proposals never leave its ``[m_min, m_max]`` actuator
  range, whatever observation stream it sees;
* deterministic replay — rebuilding the controller from its traced
  configuration and feeding it the recorded observations — reproduces
  the recorded ``m_t`` trajectory for *any* seed/workload draw.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import HybridController
from repro.graph.generators import gnm_random
from repro.obs import TraceRecorder, trajectory, verify_trace
from repro.runtime.workloads import ConsumingGraphWorkload

# engine runs are comparatively slow; keep example counts modest
RUN_SETTINGS = settings(max_examples=15, deadline=None)


def record_run(controller, n, d, graph_seed, engine_seed, max_steps=25):
    rec = TraceRecorder()
    workload = ConsumingGraphWorkload(gnm_random(n, d, seed=graph_seed))
    engine = workload.build_engine(controller, seed=engine_seed, recorder=rec)
    engine.run(max_steps=max_steps)
    return rec.events


run_draws = st.tuples(
    st.integers(min_value=30, max_value=80),  # nodes
    st.integers(min_value=2, max_value=10),  # average degree
    st.integers(min_value=0, max_value=2**31 - 1),  # graph seed
    st.integers(min_value=0, max_value=2**31 - 1),  # engine seed
)


class TestStepAccounting:
    @RUN_SETTINGS
    @given(draw=run_draws)
    def test_commits_plus_aborts_equal_launched(self, draw):
        n, d, graph_seed, engine_seed = draw
        events = record_run(
            HybridController(0.25, m_max=32), n, d, graph_seed, engine_seed
        )
        steps = [e for e in events if e.kind == "step"]
        assert steps
        for e in steps:
            assert e.data["committed"] + e.data["aborted"] == e.data["launched"]
            assert 0 < e.data["launched"] <= e.data["requested"]
            assert e.data["launched"] <= e.data["workset_before"]


class TestActuatorBounds:
    @settings(max_examples=50, deadline=None)
    @given(
        rs=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=60
        ),
        m_min=st.integers(min_value=1, max_value=8),
        span=st.integers(min_value=0, max_value=100),
        rho=st.floats(min_value=0.05, max_value=0.9),
    )
    def test_proposals_stay_within_range(self, rs, m_min, span, rho):
        m_max = m_min + span
        controller = HybridController(rho, m0=m_min, m_min=m_min, m_max=m_max)
        for r in rs:
            m = controller.propose()
            assert m_min <= m <= m_max
            controller.observe(r, m)


class TestDeterministicReplay:
    @RUN_SETTINGS
    @given(
        draw=run_draws,
        rho=st.sampled_from([0.1, 0.25, 0.5]),
    )
    def test_replay_reproduces_m_trajectory(self, draw, rho):
        n, d, graph_seed, engine_seed = draw
        events = record_run(
            HybridController(rho, m_max=48), n, d, graph_seed, engine_seed
        )
        reports = verify_trace(events)  # raises ReplayMismatchError on divergence
        assert len(reports) == 1
        ms, _ = trajectory(events)
        assert np.array_equal(reports[0].m_replayed, ms)
