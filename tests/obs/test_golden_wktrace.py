"""Golden workload-trace regression test.

A checked-in ``.wktrace`` fixture records a reference Boruvka run
captured through :class:`~repro.runtime.wktrace.WorkloadCapture`.  The
test re-records the identical run and demands *byte-identical* canonical
JSONL — any drift in the capture encoding, the canonical serialisation,
the app's task generation, or the engine's commit schedule shows up as a
diff here — and then replays the fixture to completion, proving the
recorded artefact stays executable.

Regenerate (only after an intentional semantic change!) with::

    PYTHONPATH=src python -c "from tests.obs.test_golden_wktrace import regenerate; regenerate()"
"""

from pathlib import Path

from repro.control import HybridController
from repro.obs import TraceRecorder
from repro.runtime.wktrace import TraceReplayWorkload, WorkloadCapture, WorkloadTrace

FIXTURE = Path(__file__).parent / "fixtures" / "golden_boruvka_n60.wktrace"

SCALE = 60
GRAPH_SEED = 2011  # SPAA 2011
ENGINE_SEED = 8


def golden_trace() -> WorkloadTrace:
    """Record the reference run: Boruvka MST at scale 60 under Algorithm 1."""
    from repro.apps import build_app_input, workload_from_input

    source = build_app_input("boruvka", SCALE, seed=GRAPH_SEED)
    app = workload_from_input("boruvka", source, seed=GRAPH_SEED)
    capture = WorkloadCapture(app, label="boruvka")
    capture.make_engine(HybridController(0.25, m_max=64), seed=ENGINE_SEED).run()
    return capture.finalize()


def regenerate() -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(golden_trace().to_jsonl(), encoding="utf-8")
    print(f"wrote {FIXTURE}")


class TestGoldenWorkloadTrace:
    def test_fixture_exists(self):
        assert FIXTURE.exists(), "golden wktrace missing; run regenerate()"

    def test_rerecording_is_byte_identical(self):
        fresh = golden_trace().to_jsonl()
        assert fresh == FIXTURE.read_text(encoding="utf-8"), (
            "golden workload trace drifted: capture encoding, app task "
            "generation, or engine schedule changed; if intentional, "
            "regenerate the fixture"
        )

    def test_fixture_loads_and_fingerprint_verifies(self):
        trace = WorkloadTrace.load(FIXTURE)  # load() re-checks the fingerprint
        assert trace.label == "boruvka"
        assert not trace.requires_order
        assert len(trace.commits) > SCALE  # MST contractions spawn children

    def test_fixture_replays_to_completion(self):
        workload = TraceReplayWorkload.load(FIXTURE)
        workload.make_engine(HybridController(0.25, m_max=64), seed=3).run()
        assert workload.replay_complete()
        assert workload.unrecorded_commits == 0

    def test_fixture_replay_is_select_backend_invariant(self):
        from repro import RunConfig
        from repro.api import run

        def leg(select):
            rec = TraceRecorder()
            run(
                RunConfig(workload=f"trace:{FIXTURE}", seed=5, select=select),
                recorder=rec,
            )
            return rec.to_jsonl()

        assert leg("workset") == leg("incremental")
