"""Tests for repro.model.turan — Thm. 1/2/3, Cor. 2/3, Prop. 2."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.graph.generators import gnm_random, kdn_worst_case, random_regular
from repro.model.conflict_ratio import estimate_conflict_ratio, estimate_em
from repro.model.seating import expected_mis
from repro.model.turan import (
    alpha_conflict_bound,
    alpha_conflict_bound_limit,
    em_disjoint_cliques,
    em_kdn,
    initial_derivative,
    safe_initial_m,
    turan_bound,
    worst_case_conflict_ratio,
    worst_case_conflict_ratio_approx,
)


class TestTuranBound:
    def test_value(self):
        assert turan_bound(100, 4) == pytest.approx(20.0)

    def test_holds_on_random_graphs(self):
        """Thm. 1: E[greedy MIS] >= n/(d+1)."""
        for seed in range(3):
            g = gnm_random(150, 6, seed=seed)
            mis = expected_mis(g, reps=300, seed=seed)
            assert mis.mean + mis.half_width >= turan_bound(150, g.average_degree)

    def test_tight_on_cliques(self):
        """Remark 2: K_d^n achieves the bound exactly."""
        g = kdn_worst_case(60, 5)
        mis = expected_mis(g, reps=400, seed=0)
        assert mis.mean == pytest.approx(turan_bound(60, 5), abs=3 * mis.half_width + 1e-9)

    def test_validation(self):
        with pytest.raises(ModelError):
            turan_bound(0, 1)
        with pytest.raises(ModelError):
            turan_bound(5, 5)


class TestEmKdn:
    def test_m_zero_and_full(self):
        assert em_kdn(20, 4, 0) == 0.0
        assert em_kdn(20, 4, 20) == pytest.approx(4.0)  # s = 4 cliques

    def test_monotone_in_m(self):
        vals = [em_kdn(60, 5, m) for m in range(61)]
        assert all(b >= a - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_against_simulation(self):
        g = kdn_worst_case(84, 6)
        for m in (3, 12, 40):
            mc = estimate_em(g, m, reps=2500, seed=m)
            assert abs(mc.mean - em_kdn(84, 6, m)) <= 3 * mc.half_width + 1e-9

    def test_divisibility_required(self):
        with pytest.raises(ModelError):
            em_kdn(10, 3, 3)

    def test_m_range_checked(self):
        with pytest.raises(ModelError):
            em_kdn(20, 4, 21)


class TestEmDisjointCliques:
    def test_reduces_to_em_kdn_on_equal_cliques(self):
        for m in (0, 5, 20, 60):
            assert em_disjoint_cliques([5] * 12, m) == pytest.approx(em_kdn(60, 4, m))

    def test_example1_closed_form(self):
        """K_{n²} ∪ D_n at m = n+1 gives exactly 2 (Example 1)."""
        n = 12
        sizes = [n * n] + [1] * n
        assert em_disjoint_cliques(sizes, n + 1) == pytest.approx(2.0)

    def test_matches_simulation_on_mixed_sizes(self):
        from repro.graph.ccgraph import CCGraph
        from repro.model.conflict_ratio import estimate_em

        sizes = [1, 2, 3, 5, 8, 13]
        g = CCGraph()
        for s in sizes:
            ids = [g.add_node() for _ in range(s)]
            for i, u in enumerate(ids):
                for v in ids[i + 1 :]:
                    g.add_edge(u, v)
        for m in (3, 10, 25):
            mc = estimate_em(g, m, reps=4000, seed=m)
            assert abs(mc.mean - em_disjoint_cliques(sizes, m)) <= 3 * mc.half_width

    def test_full_sample_counts_cliques(self):
        assert em_disjoint_cliques([3, 1, 7], 11) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            em_disjoint_cliques([0, 2], 1)
        with pytest.raises(ModelError):
            em_disjoint_cliques([2, 2], 5)


class TestWorstCaseBound:
    def test_exact_vs_approx_converge(self):
        n, d = 2040, 16
        for m in (10, 100, 1000):
            exact = worst_case_conflict_ratio(n, d, m)
            approx = worst_case_conflict_ratio_approx(n, d, m)
            assert approx == pytest.approx(exact, abs=0.02)

    def test_thm2_dominance_random(self):
        """Every same-(n,d) graph's r̄ is below the worst-case bound."""
        n, d = 170, 16
        g = gnm_random(n, d, seed=1)
        for m in (10, 40, 120):
            mc = estimate_conflict_ratio(g, m, reps=800, seed=m)
            assert mc.mean - mc.half_width <= worst_case_conflict_ratio(n, d, m) + 1e-9

    def test_thm2_dominance_regular(self):
        n, d = 170, 16
        g = random_regular(n, d, seed=2)
        for m in (20, 80):
            mc = estimate_conflict_ratio(g, m, reps=800, seed=m)
            assert mc.mean - mc.half_width <= worst_case_conflict_ratio(n, d, m) + 1e-9

    def test_kdn_achieves_bound(self):
        """K_d^n itself sits exactly on the bound."""
        n, d = 102, 16
        g = kdn_worst_case(n, d)
        for m in (5, 30, 102):
            mc = estimate_conflict_ratio(g, m, reps=3000, seed=m)
            assert mc.mean == pytest.approx(
                worst_case_conflict_ratio(n, d, m), abs=3 * mc.half_width + 1e-9
            )

    def test_m_validation(self):
        with pytest.raises(ModelError):
            worst_case_conflict_ratio(20, 4, 0)
        with pytest.raises(ModelError):
            worst_case_conflict_ratio_approx(20, 4, 21)


class TestCor3:
    def test_limit_at_half_is_paper_value(self):
        """§4: m = n/2(d+1) guarantees conflict ratio ≤ 21.3%."""
        assert alpha_conflict_bound_limit(0.5) == pytest.approx(0.213, abs=5e-4)

    def test_finite_d_below_limit(self):
        for alpha in (0.25, 0.5, 1.0):
            assert alpha_conflict_bound(alpha, 16) <= alpha_conflict_bound_limit(alpha) + 1e-12

    def test_finite_d_converges_to_limit(self):
        assert alpha_conflict_bound(0.7, 10**6) == pytest.approx(
            alpha_conflict_bound_limit(0.7), abs=1e-5
        )

    @given(st.floats(0.01, 3.0))
    def test_limit_monotone_in_alpha(self, alpha):
        assert alpha_conflict_bound_limit(alpha) <= alpha_conflict_bound_limit(alpha + 0.1) + 1e-12

    def test_limit_vanishes_at_zero(self):
        assert alpha_conflict_bound_limit(1e-6) == pytest.approx(0.0, abs=1e-5)

    def test_validation(self):
        with pytest.raises(ModelError):
            alpha_conflict_bound_limit(0.0)
        with pytest.raises(ModelError):
            alpha_conflict_bound(5.0, 2.0)


class TestProp2:
    def test_formula(self):
        assert initial_derivative(2000, 16) == pytest.approx(16 / (2 * 1999))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(20, 100), st.floats(1.0, 8.0), st.data())
    def test_matches_r2_measurement(self, n, d, data):
        """Δr̄(1) = r̄(2) since r̄(1) = 0; must equal d/2(n−1) for any graph."""
        d = min(d, n - 1.0)
        g = gnm_random(n, d, seed=data.draw(st.integers(0, 100)))
        mc = estimate_conflict_ratio(g, 2, reps=20000, seed=0)
        formula = initial_derivative(n, g.average_degree)
        assert abs(mc.mean - formula) <= 3 * mc.half_width + 1e-3

    def test_validation(self):
        with pytest.raises(ModelError):
            initial_derivative(1, 0)


class TestPredictMuLinear:
    def test_closed_form(self):
        from repro.model.turan import predict_mu_linear

        assert predict_mu_linear(2001, 16.0, 0.2) == round(2 * 0.2 * 2000 / 16)

    def test_close_to_oracle_on_random_graphs(self):
        from repro.control.tuning import oracle_mu
        from repro.model.turan import predict_mu_linear

        g = gnm_random(1200, 16, seed=5)
        mu_hat = predict_mu_linear(1200, 16.0, 0.2)
        mu = oracle_mu(g, 0.2, reps=120, seed=6)
        assert mu_hat == pytest.approx(mu, rel=0.5)

    def test_predictor_ordering(self):
        """linear ≤ worst-case-safe: the linear extrapolation overestimates
        r̄ (every curve is sub-linear past the origin), so it underestimates
        μ even relative to the worst-case inversion."""
        from repro.model.turan import predict_mu_linear

        for d in (4, 16, 48):
            n = 2040 - 2040 % (d + 1)
            assert predict_mu_linear(n, float(d), 0.2) <= safe_initial_m(
                n, float(d), 0.2
            )

    def test_conflict_free_uses_everything(self):
        from repro.model.turan import predict_mu_linear

        assert predict_mu_linear(50, 0.0, 0.2) == 50

    def test_validation(self):
        from repro.model.turan import predict_mu_linear

        with pytest.raises(ModelError):
            predict_mu_linear(100, 5.0, 0.0)
        with pytest.raises(ModelError):
            predict_mu_linear(100, 5.0, 0.2, m_min=0)


class TestSafeInitialM:
    def test_bound_respected(self):
        n, d, rho = 2000, 16.0, 0.2
        m = safe_initial_m(n, d, rho)
        assert worst_case_conflict_ratio_approx(n, d, m) <= rho + 1e-12
        if m < n:
            assert worst_case_conflict_ratio_approx(n, d, m + 1) > rho

    def test_smart_start_near_paper_value(self):
        """§4: m = n/2(d+1) has bound ≈ 21.3%, so safe m at ρ=0.213 ≈ that."""
        n, d = 2000, 16
        m = safe_initial_m(n, d, 0.213)
        assert m == pytest.approx(n / (2 * (d + 1)), rel=0.15)

    def test_m_min_floor(self):
        assert safe_initial_m(100, 50.0, 0.001, m_min=2) == 2

    def test_validation(self):
        with pytest.raises(ModelError):
            safe_initial_m(100, 5, 0.0)
        with pytest.raises(ModelError):
            safe_initial_m(100, 5, 0.5, m_min=0)


def test_nan_free_across_grid():
    """The bound functions stay finite over a wide parameter grid."""
    for n in (10, 100, 5000):
        for d in (0, 1, 8):
            for m in (1, n // 2, n):
                assert math.isfinite(worst_case_conflict_ratio_approx(n, float(d), m))
