"""Tests for repro.model.conflict_ratio — r̄(m), k̄(m), b_m and Lemma 1/Prop 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.graph.generators import (
    complete_graph,
    empty_graph,
    gnm_random,
    union_of_cliques,
)
from repro.model.conflict_ratio import (
    conflict_ratio_curve,
    estimate_conflict_ratio,
    estimate_em,
    estimate_kbar,
    exact_conflict_ratio,
    exact_kbar,
    first_come_bound,
    first_come_probability,
)
from repro.model.turan import em_kdn
from repro.utils.finite_diff import is_convex, is_nondecreasing


class TestExactEnumeration:
    def test_empty_graph_no_conflicts(self):
        g = empty_graph(5)
        for m in range(1, 6):
            assert exact_conflict_ratio(g, m) == 0.0

    def test_complete_graph_closed_form(self):
        # on K_n exactly one commits: k̄(m) = m − 1
        g = complete_graph(6)
        for m in range(1, 7):
            assert exact_kbar(g, m) == pytest.approx(m - 1)
            assert exact_conflict_ratio(g, m) == pytest.approx((m - 1) / m)

    def test_single_edge_two_nodes(self):
        # P[both chosen] = 1 for m=2 -> k̄ = 1
        from repro.graph.ccgraph import CCGraph

        g = CCGraph.from_edges(2, [(0, 1)])
        assert exact_kbar(g, 2) == pytest.approx(1.0)
        assert exact_kbar(g, 1) == pytest.approx(0.0)

    def test_refuses_explosive_enumeration(self):
        with pytest.raises(ModelError):
            exact_kbar(gnm_random(30, 3, seed=0), 15)

    def test_m_zero(self):
        assert exact_kbar(empty_graph(3), 0) == 0.0

    def test_ratio_requires_positive_m(self, small_graph):
        with pytest.raises(ModelError):
            exact_conflict_ratio(small_graph, 0)


class TestMonteCarloAgainstExact:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(3, 7), st.data())
    def test_mc_matches_enumeration(self, n, data):
        g = gnm_random(n, min(2.0, n - 1), seed=data.draw(st.integers(0, 100)))
        m = data.draw(st.integers(1, n))
        exact = exact_conflict_ratio(g, m)
        mc = estimate_conflict_ratio(g, m, reps=4000, seed=0)
        assert abs(mc.mean - exact) <= max(3 * mc.half_width, 0.02)

    def test_kbar_em_complementary(self, medium_random_graph):
        m = 60
        kbar = estimate_kbar(medium_random_graph, m, reps=300, seed=1)
        em = estimate_em(medium_random_graph, m, reps=300, seed=1)
        assert kbar.mean + em.mean == pytest.approx(m)

    def test_reps_validation(self, small_graph):
        with pytest.raises(ModelError):
            estimate_kbar(small_graph, 2, reps=0)


class TestPaperProperties:
    def test_prop1_ratio_nondecreasing(self, medium_random_graph):
        """Prop. 1: r̄(m) is non-decreasing in m."""
        ms = [2, 5, 10, 20, 40, 80, 150, 300]
        curve = conflict_ratio_curve(medium_random_graph, ms, reps=600, seed=2)
        # allow MC noise of two half-widths per step
        slack = 2 * curve.half_widths.max()
        assert is_nondecreasing(curve.ratios, atol=slack)

    def test_lemma1_kbar_nondecreasing_convex_exact(self):
        """Lemma 1 on a tiny graph via exact enumeration."""
        g = gnm_random(7, 2.5, seed=3)
        kbars = np.array([exact_kbar(g, m) for m in range(1, 8)])
        assert is_nondecreasing(kbars, atol=1e-12)
        assert is_convex(kbars, atol=1e-12)

    def test_kbar_one_is_zero(self, medium_random_graph):
        assert estimate_kbar(medium_random_graph, 1, reps=50, seed=0).mean == 0.0


class TestCurve:
    def test_curve_fields(self, medium_random_graph):
        curve = conflict_ratio_curve(medium_random_graph, [2, 10, 50], reps=100, seed=4)
        assert list(curve.ms) == [2, 10, 50]
        assert curve.replications == 100
        rows = curve.as_rows()
        assert len(rows) == 3 and rows[0][0] == 2

    def test_curve_interpolation(self, medium_random_graph):
        curve = conflict_ratio_curve(medium_random_graph, [2, 100], reps=100, seed=5)
        mid = curve.interpolate(51)
        assert min(curve.ratios) <= mid <= max(curve.ratios)

    def test_curve_rejects_empty_grid(self, medium_random_graph):
        with pytest.raises(ModelError):
            conflict_ratio_curve(medium_random_graph, [], reps=10)

    def test_curve_rejects_out_of_range(self, medium_random_graph):
        with pytest.raises(ModelError):
            conflict_ratio_curve(medium_random_graph, [0, 5], reps=10)
        with pytest.raises(ModelError):
            conflict_ratio_curve(medium_random_graph, [5, 10**6], reps=10)


class TestFirstComeBound:
    def test_probability_closed_form_degenerate(self):
        # isolated node: P = m/n
        assert first_come_probability(10, 0, 4) == pytest.approx(0.4)

    def test_probability_full_degree(self):
        # node adjacent to everything: commits iff drawn first
        assert first_come_probability(10, 9, 10) == pytest.approx(1 / 10)

    def test_probability_validation(self):
        with pytest.raises(ModelError):
            first_come_probability(0, 0, 0)
        with pytest.raises(ModelError):
            first_come_probability(5, 5, 2)
        with pytest.raises(ModelError):
            first_come_probability(5, 2, 6)

    def test_bound_equals_em_on_cliques(self):
        """b_m = EM_m exactly on disjoint unions of cliques (Thm. 2 proof)."""
        g = union_of_cliques(6, 5)  # n=30, d=4
        for m in (1, 7, 15, 30):
            assert first_come_bound(g, m) == pytest.approx(em_kdn(30, 4, m), abs=1e-9)

    def test_bound_below_em_generally(self, medium_random_graph):
        m = 80
        bm = first_come_bound(medium_random_graph, m)
        em = estimate_em(medium_random_graph, m, reps=500, seed=6)
        assert bm <= em.mean + em.half_width

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.data())
    def test_bound_monotone_in_m(self, n, data):
        g = gnm_random(n, min(3.0, n - 1), seed=data.draw(st.integers(0, 50)))
        values = [first_come_bound(g, m) for m in range(n + 1)]
        assert is_nondecreasing(np.array(values), atol=1e-12)
