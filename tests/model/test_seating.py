"""Tests for repro.model.seating — unfriendly seating expectations."""

import pytest

from repro.errors import ModelError
from repro.graph.generators import cycle_graph, path_graph
from repro.model.seating import (
    cycle_expected_occupancy,
    expected_mis,
    path_expected_occupancy,
    seating_density_limit,
)


class TestPathExact:
    def test_base_cases(self):
        assert path_expected_occupancy(0) == 0.0
        assert path_expected_occupancy(1) == 1.0
        assert path_expected_occupancy(2) == 1.0

    def test_three_seats_hand_computed(self):
        # seats 1..3: first sits 1 or 3 -> 2 total; sits 2 -> 1 total
        assert path_expected_occupancy(3) == pytest.approx(5 / 3)

    def test_four_seats_hand_computed(self):
        # E_4 = 1 + (2/4)(E_0 + E_1 + E_2) = 1 + (0+1+1)/2 = 2
        assert path_expected_occupancy(4) == pytest.approx(2.0)

    def test_density_converges_to_limit(self):
        limit = seating_density_limit()
        assert path_expected_occupancy(2000) / 2000 == pytest.approx(limit, abs=1e-3)

    def test_limit_value(self):
        assert seating_density_limit() == pytest.approx(0.43233235, abs=1e-8)

    def test_negative_raises(self):
        with pytest.raises(ModelError):
            path_expected_occupancy(-1)

    def test_monotone_in_n(self):
        vals = [path_expected_occupancy(n) for n in range(30)]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


class TestCycleExact:
    def test_small_cycles(self):
        assert cycle_expected_occupancy(3) == 1.0  # any seat blocks both others
        assert cycle_expected_occupancy(4) == pytest.approx(1.0 + path_expected_occupancy(1))

    def test_below_three_degenerates(self):
        assert cycle_expected_occupancy(2) == 1.0
        assert cycle_expected_occupancy(0) == 0.0

    def test_cycle_density_same_limit(self):
        assert cycle_expected_occupancy(2000) / 2000 == pytest.approx(
            seating_density_limit(), abs=1e-3
        )


class TestAgainstSimulation:
    def test_path_mc_matches_exact(self):
        n = 60
        mc = expected_mis(path_graph(n), reps=2500, seed=0)
        assert abs(mc.mean - path_expected_occupancy(n)) <= 3 * mc.half_width

    def test_cycle_mc_matches_exact(self):
        n = 40
        mc = expected_mis(cycle_graph(n), reps=2500, seed=1)
        assert abs(mc.mean - cycle_expected_occupancy(n)) <= 3 * mc.half_width

    def test_empty_graph(self):
        from repro.graph.ccgraph import CCGraph

        assert expected_mis(CCGraph(), reps=10).mean == 0.0
