"""Tests for repro.model.permutation — commit-order semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.graph.ccgraph import CCGraph
from repro.graph.generators import complete_graph, empty_graph, gnm_random
from repro.model.permutation import (
    PrefixSampler,
    committed_mask_csr,
    committed_set,
    conflict_count,
    conflict_ratio_realization,
)


class TestCommittedSet:
    def test_independent_nodes_all_commit(self):
        g = empty_graph(4)
        assert committed_set(g, [2, 0, 3]) == [2, 0, 3]

    def test_clique_commits_only_first(self):
        g = complete_graph(5)
        assert committed_set(g, [3, 1, 4]) == [3]

    def test_order_matters(self, small_graph):
        # 0-1-2 triangle: first of them wins
        assert committed_set(small_graph, [0, 1, 2]) == [0]
        assert committed_set(small_graph, [1, 0, 2]) == [1]

    def test_aborted_predecessor_does_not_block(self):
        # path 0-1-2: order [0, 1, 2] -> 1 aborts (conflicts with 0),
        # then 2 commits because 1 never committed.
        g = CCGraph.from_edges(3, [(0, 1), (1, 2)])
        assert committed_set(g, [0, 1, 2]) == [0, 2]

    def test_committed_is_independent_and_maximal(self, medium_random_graph):
        rng = np.random.default_rng(0)
        nodes = medium_random_graph.nodes()
        order = [nodes[i] for i in rng.permutation(len(nodes))[:120]]
        cset = set(committed_set(medium_random_graph, order))
        # independent
        for u in cset:
            assert cset.isdisjoint(medium_random_graph.neighbors(u))
        # maximal within the induced prefix
        for v in order:
            if v not in cset:
                assert not cset.isdisjoint(medium_random_graph.neighbors(v))

    def test_duplicate_node_raises(self, small_graph):
        with pytest.raises(ModelError):
            committed_set(small_graph, [0, 0])

    def test_empty_order(self, small_graph):
        assert committed_set(small_graph, []) == []


class TestConflictCounts:
    def test_conflict_count(self, small_graph):
        assert conflict_count(small_graph, [0, 1, 2]) == 2

    def test_ratio(self, small_graph):
        assert conflict_ratio_realization(small_graph, [0, 1, 2]) == pytest.approx(2 / 3)

    def test_ratio_empty_prefix_is_zero(self, small_graph):
        assert conflict_ratio_realization(small_graph, []) == 0.0


class TestCsrEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(2, 40),
        st.floats(0.0, 6.0),
        st.data(),
    )
    def test_csr_matches_reference(self, n, d, data):
        d = min(d, n - 1.0)
        g = gnm_random(n, d, seed=data.draw(st.integers(0, 1000)))
        snap = g.snapshot()
        m = data.draw(st.integers(0, n))
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        idx = rng.permutation(n)[:m]
        mask = committed_mask_csr(snap, idx)
        ref = committed_set(g, [int(snap.node_ids[i]) for i in idx])
        got = [int(snap.node_ids[i]) for i, ok in zip(idx, mask) if ok]
        assert got == ref

    def test_empty_prefix(self, medium_random_graph):
        snap = medium_random_graph.snapshot()
        assert committed_mask_csr(snap, np.empty(0, dtype=np.int64)).shape == (0,)

    def test_duplicate_raises(self, medium_random_graph):
        snap = medium_random_graph.snapshot()
        with pytest.raises(ModelError):
            committed_mask_csr(snap, np.array([0, 0]))

    def test_out_of_range_raises(self, medium_random_graph):
        snap = medium_random_graph.snapshot()
        with pytest.raises(ModelError):
            committed_mask_csr(snap, np.array([snap.num_nodes]))

    def test_all_nodes_clique(self):
        snap = complete_graph(10).snapshot()
        mask = committed_mask_csr(snap, np.arange(10))
        assert mask.sum() == 1 and mask[0]


class TestPrefixSampler:
    def test_draw_is_valid_prefix(self, medium_random_graph):
        snap = medium_random_graph.snapshot()
        sampler = PrefixSampler(snap, np.random.default_rng(0))
        pre = sampler.draw(50)
        assert pre.shape == (50,)
        assert len(set(pre.tolist())) == 50

    def test_draw_out_of_range(self, medium_random_graph):
        sampler = PrefixSampler(medium_random_graph.snapshot(), np.random.default_rng(0))
        with pytest.raises(ModelError):
            sampler.draw(10**6)

    def test_committed_counts_reasonable(self):
        snap = complete_graph(20).snapshot()
        sampler = PrefixSampler(snap, np.random.default_rng(1))
        for _ in range(10):
            assert sampler.committed(10).sum() == 1

    def test_prefix_uniformity(self):
        # over many draws each node appears in position 0 equally often
        snap = empty_graph(5).snapshot()
        sampler = PrefixSampler(snap, np.random.default_rng(2))
        counts = np.zeros(5)
        for _ in range(5000):
            counts[sampler.draw(1)[0]] += 1
        assert counts.min() > 800
