"""Statistical theory-conformance suite (§2–§3 of the paper).

Checks that the Monte-Carlo estimators agree with the paper's exact
claims, each within the estimator's own confidence interval:

* **Prop. 1** — the conflict ratio ``r̄(m)`` is non-decreasing in ``m``
  (checked both on MC curves and by exact enumeration on tiny graphs).
* **Prop. 2** — the initial slope is exactly ``Δr̄(1) = d/(2(n−1))``
  for *any* graph; since ``r̄(1) = 0`` this pins ``r̄(2)``.
* **Thm. 3** — no graph's measured ``r̄(m)`` exceeds the worst-case
  closed form of the ``K_d^n`` family, and ``K_d^n`` itself attains it.
* **Seating** — the Freedman–Shepp recurrences for paths/cycles match
  the MC greedy-MIS expectation.

Every check uses fixed seeds derived from one base constant, so the
suite is deterministic: it either passes forever or a real semantic
change broke an estimator.
"""

import pytest

from repro.graph.generators import (
    cycle_graph,
    gnm_random,
    kdn_worst_case,
    path_graph,
    random_regular,
    union_of_cliques,
)
from repro.model.conflict_ratio import (
    conflict_ratio_curve,
    estimate_conflict_ratio,
    estimate_em,
    exact_conflict_ratio,
)
from repro.model.seating import (
    cycle_expected_occupancy,
    expected_mis,
    path_expected_occupancy,
    seating_density_limit,
)
from repro.model.turan import (
    em_kdn,
    initial_derivative,
    worst_case_conflict_ratio,
)
from repro.utils.rng import derive_seed

BASE = 20110613  # fixed — the suite must pass deterministically


def seed(*key) -> int:
    return derive_seed(BASE, "conformance", *key)


# ----------------------------------------------------------------------
# Proposition 1: r̄(m) is non-decreasing in m
# ----------------------------------------------------------------------
class TestProposition1:
    def test_mc_curve_is_nondecreasing_within_ci(self):
        graph = gnm_random(200, 8.0, seed=seed("prop1", "graph"))
        curve = conflict_ratio_curve(
            graph,
            [1, 2, 5, 10, 20, 50, 100, 150, 200],
            reps=400,
            seed=seed("prop1", "mc"),
        )
        ratios, halves = curve.ratios, curve.half_widths
        assert ratios[0] == 0.0  # a single task can never conflict
        for i in range(len(ratios) - 1):
            # monotone up to the combined CI half-widths of the two points
            assert ratios[i + 1] >= ratios[i] - (halves[i] + halves[i + 1])
        assert ratios[-1] > ratios[0]  # and genuinely increasing overall

    @pytest.mark.parametrize(
        "graph",
        [path_graph(6), cycle_graph(6), union_of_cliques(2, 3)],
        ids=["path6", "cycle6", "cliques2x3"],
    )
    def test_exact_enumeration_is_nondecreasing(self, graph):
        ratios = [exact_conflict_ratio(graph, m) for m in range(1, 7)]
        assert ratios[0] == 0.0
        for a, b in zip(ratios, ratios[1:]):
            assert b >= a - 1e-12


# ----------------------------------------------------------------------
# Proposition 2: Δr̄(1) = d/(2(n−1)) exactly, for any graph
# ----------------------------------------------------------------------
class TestProposition2:
    @pytest.mark.parametrize(
        "name, graph",
        [
            ("gnm", gnm_random(150, 6.0, seed=seed("prop2", "gnm"))),
            ("regular", random_regular(90, 4, seed=seed("prop2", "regular"))),
            ("cliques", union_of_cliques(30, 4)),
        ],
    )
    def test_initial_slope_matches_mc(self, name, graph):
        snapshot = graph.snapshot()
        n = snapshot.num_nodes
        d = float(snapshot.degrees.mean())
        # r̄(1) = 0, so r̄(2) IS the initial slope
        ci = estimate_conflict_ratio(snapshot, 2, reps=20_000, seed=seed("prop2", name))
        exact = initial_derivative(n, d)
        assert abs(ci.mean - exact) <= 1.5 * ci.half_width

    def test_initial_slope_exact_on_tiny_graphs(self):
        for graph in (path_graph(5), union_of_cliques(2, 3)):
            snapshot = graph.snapshot()
            slope = initial_derivative(
                snapshot.num_nodes, float(snapshot.degrees.mean())
            )
            assert exact_conflict_ratio(graph, 2) == pytest.approx(slope, abs=1e-12)


# ----------------------------------------------------------------------
# Theorem 3: K_d^n is the worst case
# ----------------------------------------------------------------------
class TestTheorem3:
    N, D = 120, 5  # (d+1) | n, as K_d^n requires
    MS = [1, 2, 6, 12, 24, 48, 96, 120]

    def test_random_graph_never_exceeds_worst_case(self):
        # gnm_random places exactly n·d/2 edges, so the average degree is
        # exactly D and the Thm. 3 bound applies verbatim
        graph = gnm_random(self.N, float(self.D), seed=seed("thm3", "gnm"))
        snapshot = graph.snapshot()
        assert float(snapshot.degrees.mean()) == pytest.approx(self.D)
        for m in self.MS:
            ci = estimate_conflict_ratio(snapshot, m, reps=600, seed=seed("thm3", m))
            bound = worst_case_conflict_ratio(self.N, self.D, m)
            assert ci.mean - ci.half_width <= bound + 1e-9

    def test_kdn_attains_the_closed_form(self):
        graph = kdn_worst_case(self.N, self.D)
        for m in self.MS:
            ci = estimate_em(graph, m, reps=800, seed=seed("kdn", m))
            exact = em_kdn(self.N, self.D, m)
            assert abs(ci.mean - exact) <= max(4.0 * ci.half_width, 1e-9)

    def test_worst_case_bound_is_itself_nondecreasing(self):
        # Prop. 1 applies to K_d^n too: the bound inherits monotonicity
        bounds = [worst_case_conflict_ratio(self.N, self.D, m) for m in self.MS]
        assert bounds == sorted(bounds)
        assert worst_case_conflict_ratio(self.N, self.D, 1) == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Seating closed forms vs Monte-Carlo
# ----------------------------------------------------------------------
class TestSeating:
    def test_path_recurrence_small_values(self):
        assert path_expected_occupancy(1) == 1.0
        assert path_expected_occupancy(2) == 1.0
        assert path_expected_occupancy(3) == pytest.approx(5.0 / 3.0)

    def test_path_density_approaches_limit(self):
        n = 2000
        assert path_expected_occupancy(n) / n == pytest.approx(
            seating_density_limit(), abs=1e-3
        )

    @pytest.mark.parametrize("n", [2, 7, 40])
    def test_path_matches_mc(self, n):
        ci = expected_mis(path_graph(n), reps=3000, seed=seed("seat", "path", n))
        exact = path_expected_occupancy(n)
        assert abs(ci.mean - exact) <= max(4.0 * ci.half_width, 1e-9)

    @pytest.mark.parametrize("n", [3, 8, 40])
    def test_cycle_matches_mc(self, n):
        ci = expected_mis(cycle_graph(n), reps=3000, seed=seed("seat", "cycle", n))
        exact = cycle_expected_occupancy(n)
        assert abs(ci.mean - exact) <= max(4.0 * ci.half_width, 1e-9)
