"""Statistical theory-conformance suite (§2–§3 of the paper).

Checks that the Monte-Carlo estimators agree with the paper's exact
claims, each within the estimator's own confidence interval:

* **Prop. 1** — the conflict ratio ``r̄(m)`` is non-decreasing in ``m``
  (checked both on MC curves and by exact enumeration on tiny graphs).
* **Prop. 2** — the initial slope is exactly ``Δr̄(1) = d/(2(n−1))``
  for *any* graph; since ``r̄(1) = 0`` this pins ``r̄(2)``.
* **Thm. 3** — no graph's measured ``r̄(m)`` exceeds the worst-case
  closed form of the ``K_d^n`` family, and ``K_d^n`` itself attains it.
* **Seating** — the Freedman–Shepp recurrences for paths/cycles match
  the MC greedy-MIS expectation.
* **Relaxed regime** — Props. 1 and 2 survive commit-order relaxation:
  under :class:`~repro.runtime.policies.RelaxedCommitOrder` the engine's
  measured ``r̄(m)`` stays non-decreasing for every depth ``k``, and the
  initial slope averaged over exchangeable random graph instances is the
  same ``d/(2(n−1))`` at *any* ``k`` (the draw picks a fixed set of node
  labels; edge exchangeability does the rest), hitting the per-graph
  closed form once ``k ≥ n``.

Every check uses fixed seeds derived from one base constant, so the
suite is deterministic: it either passes forever or a real semantic
change broke an estimator.
"""

import numpy as np
import pytest

from repro.api import run
from repro.config import RunConfig
from repro.graph.generators import (
    cycle_graph,
    gnm_random,
    kdn_worst_case,
    path_graph,
    random_regular,
    union_of_cliques,
)
from repro.model.conflict_ratio import (
    conflict_ratio_curve,
    estimate_conflict_ratio,
    estimate_em,
    exact_conflict_ratio,
)
from repro.model.seating import (
    cycle_expected_occupancy,
    expected_mis,
    path_expected_occupancy,
    seating_density_limit,
)
from repro.model.turan import (
    em_kdn,
    initial_derivative,
    worst_case_conflict_ratio,
)
from repro.utils.rng import derive_seed

BASE = 20110613  # fixed — the suite must pass deterministically


def seed(*key) -> int:
    return derive_seed(BASE, "conformance", *key)


# ----------------------------------------------------------------------
# Proposition 1: r̄(m) is non-decreasing in m
# ----------------------------------------------------------------------
class TestProposition1:
    def test_mc_curve_is_nondecreasing_within_ci(self):
        graph = gnm_random(200, 8.0, seed=seed("prop1", "graph"))
        curve = conflict_ratio_curve(
            graph,
            [1, 2, 5, 10, 20, 50, 100, 150, 200],
            reps=400,
            seed=seed("prop1", "mc"),
        )
        ratios, halves = curve.ratios, curve.half_widths
        assert ratios[0] == 0.0  # a single task can never conflict
        for i in range(len(ratios) - 1):
            # monotone up to the combined CI half-widths of the two points
            assert ratios[i + 1] >= ratios[i] - (halves[i] + halves[i + 1])
        assert ratios[-1] > ratios[0]  # and genuinely increasing overall

    @pytest.mark.parametrize(
        "graph",
        [path_graph(6), cycle_graph(6), union_of_cliques(2, 3)],
        ids=["path6", "cycle6", "cliques2x3"],
    )
    def test_exact_enumeration_is_nondecreasing(self, graph):
        ratios = [exact_conflict_ratio(graph, m) for m in range(1, 7)]
        assert ratios[0] == 0.0
        for a, b in zip(ratios, ratios[1:]):
            assert b >= a - 1e-12


# ----------------------------------------------------------------------
# Proposition 2: Δr̄(1) = d/(2(n−1)) exactly, for any graph
# ----------------------------------------------------------------------
class TestProposition2:
    @pytest.mark.parametrize(
        "name, graph",
        [
            ("gnm", gnm_random(150, 6.0, seed=seed("prop2", "gnm"))),
            ("regular", random_regular(90, 4, seed=seed("prop2", "regular"))),
            ("cliques", union_of_cliques(30, 4)),
        ],
    )
    def test_initial_slope_matches_mc(self, name, graph):
        snapshot = graph.snapshot()
        n = snapshot.num_nodes
        d = float(snapshot.degrees.mean())
        # r̄(1) = 0, so r̄(2) IS the initial slope
        ci = estimate_conflict_ratio(snapshot, 2, reps=20_000, seed=seed("prop2", name))
        exact = initial_derivative(n, d)
        assert abs(ci.mean - exact) <= 1.5 * ci.half_width

    def test_initial_slope_exact_on_tiny_graphs(self):
        for graph in (path_graph(5), union_of_cliques(2, 3)):
            snapshot = graph.snapshot()
            slope = initial_derivative(
                snapshot.num_nodes, float(snapshot.degrees.mean())
            )
            assert exact_conflict_ratio(graph, 2) == pytest.approx(slope, abs=1e-12)


# ----------------------------------------------------------------------
# Theorem 3: K_d^n is the worst case
# ----------------------------------------------------------------------
class TestTheorem3:
    N, D = 120, 5  # (d+1) | n, as K_d^n requires
    MS = [1, 2, 6, 12, 24, 48, 96, 120]

    def test_random_graph_never_exceeds_worst_case(self):
        # gnm_random places exactly n·d/2 edges, so the average degree is
        # exactly D and the Thm. 3 bound applies verbatim
        graph = gnm_random(self.N, float(self.D), seed=seed("thm3", "gnm"))
        snapshot = graph.snapshot()
        assert float(snapshot.degrees.mean()) == pytest.approx(self.D)
        for m in self.MS:
            ci = estimate_conflict_ratio(snapshot, m, reps=600, seed=seed("thm3", m))
            bound = worst_case_conflict_ratio(self.N, self.D, m)
            assert ci.mean - ci.half_width <= bound + 1e-9

    def test_kdn_attains_the_closed_form(self):
        graph = kdn_worst_case(self.N, self.D)
        for m in self.MS:
            ci = estimate_em(graph, m, reps=800, seed=seed("kdn", m))
            exact = em_kdn(self.N, self.D, m)
            assert abs(ci.mean - exact) <= max(4.0 * ci.half_width, 1e-9)

    def test_worst_case_bound_is_itself_nondecreasing(self):
        # Prop. 1 applies to K_d^n too: the bound inherits monotonicity
        bounds = [worst_case_conflict_ratio(self.N, self.D, m) for m in self.MS]
        assert bounds == sorted(bounds)
        assert worst_case_conflict_ratio(self.N, self.D, 1) == pytest.approx(0.0)


# ----------------------------------------------------------------------
# Relaxed regime: Props. 1 and 2 under RelaxedCommitOrder
# ----------------------------------------------------------------------
def _relaxed_step_ratio(graph, m: int, k: int, run_seed) -> float:
    """Conflict ratio of one engine step at depth *k* and allocation *m*."""
    config = RunConfig(
        workload="consuming",
        controller="fixed",
        m=m,
        order="ordered" if k == 1 else f"relaxed:{k}",
        max_steps=1,
    )
    return run(config, graph=graph, seed=run_seed).mean_conflict_ratio


class TestRelaxedRegime:
    N, D = 150, 8.0
    MS = [1, 2, 5, 10, 20, 40, 80]

    @pytest.mark.parametrize(
        "k", [1, 2, 75, 150], ids=["k1", "k2", "k=n/2", "k=n"]
    )
    def test_prop1_monotone_at_every_depth(self, k):
        # the engine's measured r̄(m) over the initial pool of one fixed
        # graph; k=1 consumes no randomness, so one run is exact
        reps = 1 if k == 1 else 60
        means, halves = [], []
        for m in self.MS:
            vals = np.array(
                [
                    _relaxed_step_ratio(
                        gnm_random(self.N, self.D, seed=seed("relax1", "graph")),
                        m,
                        k,
                        seed("relax1", k, m, rep),
                    )
                    for rep in range(reps)
                ]
            )
            means.append(float(vals.mean()))
            halves.append(
                0.0 if reps == 1 else 1.96 * float(vals.std(ddof=1)) / reps**0.5
            )
        assert means[0] == 0.0  # a single task can never conflict
        for i in range(len(means) - 1):
            assert means[i + 1] >= means[i] - (halves[i] + halves[i + 1] + 1e-9)
        assert means[-1] > means[0]

    @pytest.mark.parametrize("k", [1, 2, 20, 40], ids=["k1", "k2", "k=n/2", "k=n"])
    def test_prop2_initial_slope_over_exchangeable_instances(self, k):
        # the k-of-top draw always picks nodes from a fixed label window,
        # but averaged over exchangeable gnm instances every labelled
        # pair is adjacent w.p. d/(n-1) — the slope is depth-invariant
        n, d, reps = 40, 6.0, 800
        vals = np.array(
            [
                _relaxed_step_ratio(
                    gnm_random(n, d, seed=seed("relax2", "graph", k, rep)),
                    2,
                    k,
                    seed("relax2", "run", k, rep),
                )
                for rep in range(reps)
            ]
        )
        exact = initial_derivative(n, d)
        half_width = 1.96 * float(vals.std(ddof=1)) / reps**0.5
        assert abs(float(vals.mean()) - exact) <= 1.5 * half_width

    def test_prop2_exact_closed_form_at_k_ge_n(self):
        # k >= n is the uniform ordered sample: on one FIXED graph the
        # engine's mean must match the model's exact enumeration
        n, d, reps = 40, 6.0, 1500
        exact = exact_conflict_ratio(gnm_random(n, d, seed=seed("relax3")), 2)
        vals = np.array(
            [
                _relaxed_step_ratio(
                    gnm_random(n, d, seed=seed("relax3")),
                    2,
                    n,
                    seed("relax3", "run", rep),
                )
                for rep in range(reps)
            ]
        )
        half_width = 1.96 * float(vals.std(ddof=1)) / reps**0.5
        assert abs(float(vals.mean()) - exact) <= 1.5 * half_width


# ----------------------------------------------------------------------
# Seating closed forms vs Monte-Carlo
# ----------------------------------------------------------------------
class TestSeating:
    def test_path_recurrence_small_values(self):
        assert path_expected_occupancy(1) == 1.0
        assert path_expected_occupancy(2) == 1.0
        assert path_expected_occupancy(3) == pytest.approx(5.0 / 3.0)

    def test_path_density_approaches_limit(self):
        n = 2000
        assert path_expected_occupancy(n) / n == pytest.approx(
            seating_density_limit(), abs=1e-3
        )

    @pytest.mark.parametrize("n", [2, 7, 40])
    def test_path_matches_mc(self, n):
        ci = expected_mis(path_graph(n), reps=3000, seed=seed("seat", "path", n))
        exact = path_expected_occupancy(n)
        assert abs(ci.mean - exact) <= max(4.0 * ci.half_width, 1e-9)

    @pytest.mark.parametrize("n", [3, 8, 40])
    def test_cycle_matches_mc(self, n):
        ci = expected_mis(cycle_graph(n), reps=3000, seed=seed("seat", "cycle", n))
        exact = cycle_expected_occupancy(n)
        assert abs(ci.mean - exact) <= max(4.0 * ci.half_width, 1e-9)
