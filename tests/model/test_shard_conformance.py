"""Statistical conformance suite for the sharded commit order.

The sharded policy sits in the *unordered* family: its batch draw is the
paper's §2 uniform ``π_m`` sample, untouched by the shard count — only
the commit rule changes.  That gives three model-backed claims to hold
the implementation to, all chi-square tested at derived seeds:

* **launch conformance** — on a stationary replay workload the per-shard
  launch counts follow the uniform-draw model exactly: aggregated counts
  match the ``p_s = n_s / n`` multinomial proportions, and a single
  shard's per-round count follows the hypergeometric law
  ``H(n, n_s, m)``;
* **commit homogeneity** — the halo exchange walks the batch in (random)
  batch order, so on a structurally homogeneous graph no shard is
  systematically favoured: per-shard commit counts stay proportional to
  per-shard launches;
* **the all-cut degeneracy** — with at least as many shards as nodes
  every edge crosses a cut, phase 1 commits everything and phase 2 *is*
  the global greedy walk: per-step commit/abort statistics must equal
  the unordered policy's exactly (not statistically).

Seeds derive from ``REPRO_TEST_SEED`` (default 0) so CI's flaky-hunter
job re-runs the suite under several seeds; the chi-square significance
matches the select-distribution suite.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from scipy import stats

from repro.api import run
from repro.config import RunConfig
from repro.graph.generators import gnm_random
from repro.graph.partition import partition_graph
from repro.obs import ORDER_DECISION, TraceRecorder
from repro.utils.rng import derive_seed

BASE_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))
ALPHA = 1e-4  # same significance as the select-distribution suite

N = 240
DEGREE = 8
SHARDS = 4
FIXED_M = 24
STEPS = 300
GRAPH_SEED = 2011


def seed(*key) -> int:
    return derive_seed(BASE_SEED, "shard-conf", *key)


def _graph():
    return gnm_random(N, DEGREE, seed=GRAPH_SEED)


def _decisions(order: str, tag: str, *, max_steps: int = STEPS):
    """Replay-run *order* at fixed m; returns the order_decision payloads."""
    recorder = TraceRecorder()
    run(
        RunConfig(
            workload="replay",
            controller="fixed",
            m=FIXED_M,
            order=order,
            max_steps=max_steps,
        ),
        graph=_graph(),
        seed=seed(tag),
        recorder=recorder,
    )
    return [ev.data for ev in recorder.events if ev.kind == ORDER_DECISION]


def _shard_sizes() -> np.ndarray:
    graph = _graph()
    part = partition_graph(graph, SHARDS)
    return np.array(
        [len(part.members(graph, s)) for s in range(SHARDS)], dtype=float
    )


class TestLaunchConformance:
    def test_per_shard_launches_match_uniform_draw_proportions(self):
        decisions = _decisions(f"sharded:{SHARDS}", "launch")
        assert len(decisions) == STEPS
        observed = np.sum([d["launched"] for d in decisions], axis=0, dtype=float)
        sizes = _shard_sizes()
        expected = observed.sum() * sizes / sizes.sum()
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        # aggregation over without-replacement rounds has sub-multinomial
        # variance, so this chi-square is conservative
        assert stats.chi2.sf(chi2, SHARDS - 1) > ALPHA

    def test_single_shard_round_counts_are_hypergeometric(self):
        decisions = _decisions(f"sharded:{SHARDS}", "hyper")
        counts = np.array([d["launched"][0] for d in decisions])
        n0 = int(_shard_sizes()[0])
        law = stats.hypergeom(N, n0, FIXED_M)
        # bin the support, merging thin tails so expected counts stay >= 5
        support = np.arange(law.support()[0], law.support()[1] + 1)
        pmf = law.pmf(support)
        observed, expected = [], []
        obs_acc = exp_acc = 0.0
        for value, p in zip(support, pmf):
            obs_acc += float(np.count_nonzero(counts == value))
            exp_acc += p * len(counts)
            if exp_acc >= 5.0:
                observed.append(obs_acc)
                expected.append(exp_acc)
                obs_acc = exp_acc = 0.0
        observed[-1] += obs_acc
        expected[-1] += exp_acc
        observed = np.array(observed)
        expected = np.array(expected)
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        assert stats.chi2.sf(chi2, len(observed) - 1) > ALPHA


class TestCommitHomogeneity:
    def test_no_shard_is_systematically_disfavoured(self):
        decisions = _decisions(f"sharded:{SHARDS}", "commit")
        launched = np.sum([d["launched"] for d in decisions], axis=0, dtype=float)
        committed = np.sum([d["committed"] for d in decisions], axis=0, dtype=float)
        assert committed.sum() > 0 and np.all(launched > 0)
        expected = committed.sum() * launched / launched.sum()
        chi2 = float(((committed - expected) ** 2 / expected).sum())
        assert stats.chi2.sf(chi2, SHARDS - 1) > ALPHA

    def test_commit_rates_are_not_degenerate(self):
        decisions = _decisions(f"sharded:{SHARDS}", "commit")
        launched = np.sum([d["launched"] for d in decisions], axis=0, dtype=float)
        committed = np.sum([d["committed"] for d in decisions], axis=0, dtype=float)
        rates = committed / launched
        assert np.all(rates > 0.0) and np.all(rates < 1.0)


class TestAllCutDegeneracy:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_shards_ge_n_equals_unordered_step_stats(self, engine):
        # every edge cut -> phase 2 is the global greedy walk: exact, not
        # statistical, agreement in the per-step commit/abort sequence
        def steps(order):
            recorder = TraceRecorder()
            run(
                RunConfig(
                    workload="consuming",
                    rho=0.25,
                    m_max=64,
                    order=order,
                    max_steps=30,
                    engine=engine,
                ),
                graph=gnm_random(60, 6, seed=GRAPH_SEED),
                seed=seed("degenerate"),
                recorder=recorder,
            )
            return [ev.data for ev in recorder.events if ev.kind == "step"]

        assert steps("sharded:60") == steps("unordered")
