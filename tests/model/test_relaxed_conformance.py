"""Theory-bridge conformance suite for the relaxed commit-order policies.

The relaxed policy interpolates between the repo's two engines, and each
endpoint has an exact reference to hold it to:

* **k = 1 is the strict ordered policy** — not approximately: the traces
  must be *byte-identical*, RNG trajectory included, on both the graph
  path and the task-loop path, across both kernel modes.
* **the windowed draw follows the closed-form k-of-top model** — each
  round picks uniformly among the ``min(k, pending)`` earliest remaining
  tasks.  The induced distribution over ordered batches is enumerable
  for small pools; chi-square at fixed seeds holds the implementation to
  it, for ``k`` from 2 up to ``n`` (where it degenerates to the §2
  uniform ordered sample without replacement).
* **adaptive control is relaxation-agnostic** — the §4 hybrid controller
  needs only a monotone ``r̄(m)``, so it must settle within a bounded
  horizon at every depth ``k > 1`` (``k = 1`` is the ordered baseline,
  covered by the byte-identity leg).

Everything runs at fixed derived seeds: the suite either passes forever
or a semantic change broke the bridge.
"""

from collections import Counter

import numpy as np
import pytest
from scipy import stats

from repro.api import run
from repro.config import RunConfig
from repro.graph import gnm_random, gnp_random
from repro.obs import ORDER_DECISION, TraceRecorder, convergence_report, event_to_json
from repro.runtime.kernels import sample_prefix_draws, sample_window_draws
from repro.runtime.policies import PriorityWorkset
from repro.runtime.task import CallbackOperator, Task
from repro.runtime.workset import ArrivalWorkset
from repro.utils.rng import derive_seed

BASE = 20110613  # fixed — the suite must pass deterministically
ALPHA = 1e-4  # chi-square significance (same as the select-distribution suite)


def seed(*key) -> int:
    return derive_seed(BASE, "relaxed", *key)


def _trace(order, *, engine=None, graph_seed=3, run_seed=7, max_steps=12):
    """One recorded graph run; returns its canonical JSONL lines."""
    graph = gnp_random(60, 0.05, seed=graph_seed)
    recorder = TraceRecorder()
    run(
        RunConfig(
            workload="consuming",
            rho=0.25,
            max_steps=max_steps,
            order=order,
            engine=engine,
        ),
        graph=graph,
        seed=run_seed,
        recorder=recorder,
    )
    return [event_to_json(event) for event in recorder.events]


# ----------------------------------------------------------------------
# endpoint 1: depth-1 relaxation IS the strict ordered policy
# ----------------------------------------------------------------------
class TestDepthOneIsOrdered:
    def test_graph_traces_byte_identical(self):
        assert _trace("relaxed:1") == _trace("ordered")

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_byte_identical_on_both_kernel_paths(self, engine):
        assert _trace("relaxed:1", engine=engine) == _trace("ordered", engine=engine)

    def test_rng_trajectory_identical_not_just_events(self):
        # same seeds, different graph/run: identity must hold pointwise,
        # not on one lucky fixture
        for graph_seed, run_seed in [(1, 2), (5, 11), (9, 0)]:
            a = _trace("relaxed:1", graph_seed=graph_seed, run_seed=run_seed)
            b = _trace("ordered", graph_seed=graph_seed, run_seed=run_seed)
            assert a == b

    def test_task_loop_byte_identical(self):
        def loop(order):
            recorder = TraceRecorder()
            operator = CallbackOperator(
                neighborhood=lambda t: [t.payload % 7],
                apply=lambda t: [],
            )
            run(
                RunConfig(rho=0.25, max_steps=50, order=order),
                initial=[(float(i), i) for i in range(40)],
                operator=operator,
                priority_of=lambda t: float(t.payload),
                seed=seed("task-loop"),
                recorder=recorder,
            )
            return [event_to_json(event) for event in recorder.events]

        assert loop("relaxed:1") == loop("ordered")

    def test_depth_one_emits_no_order_decisions(self):
        assert not any('"order_decision"' in line for line in _trace("relaxed:1"))

    def test_deeper_windows_do_emit_order_decisions(self):
        assert any('"order_decision"' in line for line in _trace("relaxed:4"))


# ----------------------------------------------------------------------
# endpoint 2: the draw follows the closed-form k-of-top model
# ----------------------------------------------------------------------
def _k_of_top_model(n: int, m: int, k: int) -> "dict[tuple, float]":
    """Exact distribution over ordered rank-batches of the k-of-top draw."""
    probs: "dict[tuple, float]" = {}

    def rec(remaining, chosen, p):
        if len(chosen) == m:
            key = tuple(chosen)
            probs[key] = probs.get(key, 0.0) + p
            return
        window = min(k, len(remaining))
        for i in range(window):
            rec(remaining[:i] + remaining[i + 1 :], chosen + [remaining[i]], p / window)

    rec(list(range(n)), [], 1.0)
    return probs


def _draw_batches(workset_factory, n: int, m: int, k: int, trials: int, tag: str):
    counts: Counter = Counter()
    for trial in range(trials):
        workset = workset_factory(n)
        rng = np.random.default_rng(seed("chi", tag, k, trial))
        batch, _ = workset.take_window(m, k, rng)
        counts[tuple(_rank(entry) for entry in batch)] += 1
    return counts


def _rank(entry):
    # PriorityWorkset yields (priority, task); ArrivalWorkset bare tasks
    if isinstance(entry, tuple):
        return int(entry[0])
    return int(entry.payload)


def _priority_pool(n: int) -> PriorityWorkset:
    workset = PriorityWorkset()
    for i in range(n):
        workset.add(Task(payload=i), float(i))
    return workset


def _arrival_pool(n: int) -> ArrivalWorkset:
    workset = ArrivalWorkset()
    for i in range(n):
        workset.add(Task(payload=i))
    return workset


class TestKOfTopDistribution:
    N, M, TRIALS = 6, 2, 4000

    @pytest.mark.parametrize("k", [2, 4, 6], ids=["k2", "k4", "k=n"])
    def test_priority_draw_matches_model(self, k):
        model = _k_of_top_model(self.N, self.M, k)
        counts = _draw_batches(
            _priority_pool, self.N, self.M, k, self.TRIALS, "priority"
        )
        assert set(counts) <= set(model)  # zero-probability batches never occur
        keys = sorted(model)
        expected = np.array([model[key] * self.TRIALS for key in keys])
        observed = np.array([counts.get(key, 0) for key in keys])
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        assert stats.chi2.sf(chi2, len(keys) - 1) > ALPHA

    def test_k_ge_n_is_the_uniform_ordered_sample(self):
        # the §2 endpoint: every ordered pair equally likely
        model = _k_of_top_model(self.N, self.M, self.N)
        uniform = 1.0 / (self.N * (self.N - 1))
        assert all(p == pytest.approx(uniform) for p in model.values())
        assert len(model) == self.N * (self.N - 1)

    @pytest.mark.parametrize("k", [2, 6], ids=["k2", "k=n"])
    def test_arrival_draw_matches_the_same_model(self, k):
        # the async policy's bounded-staleness window is the same draw
        # over arrival ranks instead of priority ranks
        model = _k_of_top_model(self.N, self.M, k)
        counts = _draw_batches(_arrival_pool, self.N, self.M, k, self.TRIALS, "arrival")
        keys = sorted(model)
        expected = np.array([model[key] * self.TRIALS for key in keys])
        observed = np.array([counts.get(key, 0) for key in keys])
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        assert stats.chi2.sf(chi2, len(keys) - 1) > ALPHA

    def test_engine_level_draws_are_uniform_over_the_window(self):
        # through the full stack: the order_decision events of real runs
        # record in-window ranks; the first rank of each run must be
        # uniform over k (the pool always exceeds the window here)
        k, trials = 4, 2000
        counts = np.zeros(k, dtype=np.int64)
        for trial in range(trials):
            # fresh (identical) graph per trial: consuming runs eat it
            graph = gnm_random(40, 6.0, seed=seed("engine-chi", "graph"))
            recorder = TraceRecorder()
            run(
                RunConfig(
                    workload="consuming",
                    controller="fixed",
                    m=2,
                    order=f"relaxed:{k}",
                    max_steps=1,
                ),
                graph=graph,
                seed=seed("engine-chi", trial),
                recorder=recorder,
            )
            decisions = [e for e in recorder.events if e.kind == ORDER_DECISION]
            assert len(decisions) == 1
            assert decisions[0].get("window") == k
            counts[decisions[0].get("draws")[0]] += 1
        expected = np.full(k, trials / k)
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert stats.chi2.sf(chi2, k - 1) > ALPHA


# ----------------------------------------------------------------------
# the vectorised window draw consumes the bitstream exactly like the
# scalar walk it replaced (what makes recorded traces stable)
# ----------------------------------------------------------------------
class TestWindowDrawKernel:
    @pytest.mark.parametrize(
        "n, k, window",
        [(50, 10, 4), (7, 7, 3), (20, 5, 5), (12, 12, 11)],
    )
    def test_bit_parity_with_scalar_draws(self, n, k, window):
        rng = np.random.default_rng(seed("kernel", n, k, window))
        vectorised = sample_window_draws(n, k, window, rng)
        rng = np.random.default_rng(seed("kernel", n, k, window))
        highs = np.minimum(window, np.arange(n, n - k, -1, dtype=np.int64))
        scalar = np.array(
            [rng.integers(0, int(h), dtype=np.int64) for h in highs], dtype=np.int64
        )
        assert np.array_equal(vectorised, scalar)

    @pytest.mark.parametrize("n, k", [(30, 8), (10, 10)])
    def test_full_window_delegates_to_prefix_draws(self, n, k):
        rng = np.random.default_rng(seed("kernel-full", n, k))
        windowed = sample_window_draws(n, k, n, rng)
        rng = np.random.default_rng(seed("kernel-full", n, k))
        prefix = sample_prefix_draws(n, k, rng)
        assert np.array_equal(windowed, prefix)

    def test_window_one_draws_nothing(self):
        class Forbidden:
            def integers(self, *a, **k):  # pragma: no cover - must not run
                raise AssertionError("window=1 must not consume randomness")

        workset = _priority_pool(8)
        batch, draws = workset.take_window(3, 1, Forbidden())
        assert [int(p) for p, _ in batch] == [0, 1, 2]
        assert draws == [0, 0, 0]


# ----------------------------------------------------------------------
# §4 control is relaxation-agnostic: the hybrid settles at every depth
# ----------------------------------------------------------------------
class TestControllerSettlesUnderRelaxation:
    N, D, RHO, MAX_STEPS, HORIZON = 120, 8, 0.30, 60, 30

    @pytest.mark.parametrize("k", [2, 4, 60, 120], ids=["k2", "k4", "k=n/2", "k=n"])
    def test_settles_within_bounded_horizon(self, k):
        graph = gnm_random(self.N, float(self.D), seed=seed("settle", "graph"))
        recorder = TraceRecorder()
        run(
            RunConfig(
                workload="replay",
                rho=self.RHO,
                order=f"relaxed:{k}",
                max_steps=self.MAX_STEPS,
            ),
            graph=graph,
            seed=seed("settle", k),
            recorder=recorder,
        )
        # epsilon is one deadband-ish width: the claim is the bounded
        # settling horizon, not millifine tracking (that's the RMS check)
        report = convergence_report(recorder.events, rho=self.RHO, epsilon=0.1)
        assert report.settled, f"k={k} never settled"
        assert report.settling_step <= self.HORIZON
        assert report.tracking_error <= 0.1
