"""Tests for repro.model.parallelism — profiles à la [15]."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.graph.generators import complete_graph, empty_graph, union_of_cliques
from repro.model.parallelism import (
    ParallelismProfile,
    measure_profile,
    profile_from_run,
    profile_summary,
)


class TestProfileType:
    def test_length_and_peak(self):
        p = ParallelismProfile(
            available=np.array([1.0, 5.0, 3.0]), workset=np.array([10, 10, 10])
        )
        assert len(p) == 3
        assert p.peak == 5.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ModelError):
            ParallelismProfile(available=np.array([1.0]), workset=np.array([1, 2]))

    def test_rise_time(self):
        p = ParallelismProfile(
            available=np.array([0.0, 1.0, 8.0, 10.0, 9.0]),
            workset=np.zeros(5),
        )
        assert p.rise_time(0.9) == 3
        assert p.rise_time(0.05) == 1

    def test_rise_time_validation(self):
        p = ParallelismProfile(available=np.array([1.0]), workset=np.array([1.0]))
        with pytest.raises(ModelError):
            p.rise_time(0.0)

    def test_empty_profile(self):
        p = ParallelismProfile(available=np.array([]), workset=np.array([]))
        assert p.peak == 0.0 and p.rise_time() == 0


class TestMeasureProfile:
    def test_clique_sequence(self):
        graphs = [union_of_cliques(p, 6) for p in (1, 4, 8)]
        prof = measure_profile(graphs, reps=60, seed=0)
        # available parallelism of p disjoint cliques is exactly p
        assert prof.available == pytest.approx([1.0, 4.0, 8.0], abs=1e-9)
        assert list(prof.workset) == [6, 24, 48]

    def test_extremes(self):
        graphs = [empty_graph(10), complete_graph(10)]
        prof = measure_profile(graphs, reps=40, seed=1)
        assert prof.available[0] == pytest.approx(10.0)
        assert prof.available[1] == pytest.approx(1.0)

    def test_empty_graph_in_sequence(self):
        from repro.graph.ccgraph import CCGraph

        prof = measure_profile([CCGraph()], reps=5, seed=2)
        assert prof.available[0] == 0.0


class TestProfileFromRun:
    def test_tracks_engine_commits(self):
        from repro.control.fixed import FixedController
        from repro.graph.generators import gnm_random
        from repro.runtime.workloads import ConsumingGraphWorkload

        wl = ConsumingGraphWorkload(gnm_random(60, 4, seed=0))
        res = wl.build_engine(FixedController(8), seed=1).run()
        prof = profile_from_run(res)
        assert len(prof) == len(res)
        assert prof.available.sum() == res.total_committed
        assert prof.workset[0] == 60


class TestSummary:
    def test_summary_keys(self):
        prof = ParallelismProfile(
            available=np.array([0.0, 2.0, 10.0, 10.0]), workset=np.zeros(4)
        )
        s = profile_summary(prof)
        assert set(s) == {"peak", "mean", "rise_time", "burstiness"}
        assert s["peak"] == 10.0
        assert s["rise_time"] == 2.0

    def test_flat_profile_burstiness_zero(self):
        prof = ParallelismProfile(available=np.full(5, 3.0), workset=np.zeros(5))
        assert profile_summary(prof)["burstiness"] == 0.0

    def test_empty_profile_summary(self):
        prof = ParallelismProfile(available=np.array([]), workset=np.array([]))
        assert profile_summary(prof)["peak"] == 0.0
