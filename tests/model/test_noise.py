"""Tests for repro.model.noise — the conflict-ratio noise model."""

import numpy as np
import pytest

from repro.control.fixed import FixedController
from repro.errors import ModelError
from repro.graph.generators import gnm_random
from repro.model.noise import (
    false_trigger_probability,
    suggest_deadband,
    suggest_period,
    window_std,
)
from repro.runtime.workloads import ReplayGraphWorkload


class TestWindowStd:
    def test_formula(self):
        assert window_std(0.2, 100, 4) == pytest.approx(np.sqrt(0.16 / 400))

    def test_decreases_with_m_and_t(self):
        assert window_std(0.2, 100, 4) < window_std(0.2, 10, 4)
        assert window_std(0.2, 100, 16) < window_std(0.2, 100, 4)

    def test_extremes_are_zero(self):
        assert window_std(0.0, 10, 4) == 0.0
        assert window_std(1.0, 10, 4) == 0.0

    def test_validation(self):
        with pytest.raises(ModelError):
            window_std(1.5, 10, 4)
        with pytest.raises(ModelError):
            window_std(0.2, 0, 4)
        with pytest.raises(ModelError):
            window_std(0.2, 10, 0)

    def test_matches_simulation_order_of_magnitude(self):
        """Binomial approximation within 2x of the measured std."""
        graph = gnm_random(800, 10, seed=0)
        m = 60
        wl = ReplayGraphWorkload(graph)
        eng = wl.build_engine(FixedController(m), seed=1)
        res = eng.run(max_steps=400)
        rs = res.r_trace
        r_mean = float(rs.mean())
        predicted = window_std(r_mean, m, 1)
        measured = float(rs.std())
        assert predicted / 2 <= measured <= predicted * 2


class TestFalseTrigger:
    def test_probability_decreases_with_band(self):
        p_narrow = false_trigger_probability(0.2, 0.06, 10, 4)
        p_wide = false_trigger_probability(0.2, 0.30, 10, 4)
        assert p_wide < p_narrow

    def test_small_m_triggers_more(self):
        assert false_trigger_probability(0.2, 0.06, 10, 4) > false_trigger_probability(
            0.2, 0.06, 500, 4
        )

    def test_zero_band_always_triggers(self):
        assert false_trigger_probability(0.2, 0.0, 10, 4) == pytest.approx(1.0)

    def test_empirical_false_trigger_rate(self):
        """On-target windows leave the suggested band ≈ the design rate."""
        rho, m, period, rate = 0.2, 50, 4, 0.1
        band = suggest_deadband(rho, m, period, trigger_rate=rate)
        rng = np.random.default_rng(0)
        triggers = 0
        windows = 4000
        for _ in range(windows):
            rs = rng.binomial(m, rho, size=period) / m
            if abs(1.0 - rs.mean() / rho) > band:
                triggers += 1
        assert triggers / windows == pytest.approx(rate, abs=0.05)

    def test_validation(self):
        with pytest.raises(ModelError):
            false_trigger_probability(0.0, 0.1, 10, 4)
        with pytest.raises(ModelError):
            false_trigger_probability(0.2, -0.1, 10, 4)


class TestSuggestions:
    def test_deadband_shrinks_with_m(self):
        assert suggest_deadband(0.2, 500, 4) < suggest_deadband(0.2, 10, 4)

    def test_deadband_consistent_with_trigger_probability(self):
        band = suggest_deadband(0.2, 40, 4, trigger_rate=0.1)
        assert false_trigger_probability(0.2, band, 40, 4) == pytest.approx(0.1, abs=1e-6)

    def test_period_longer_for_small_m(self):
        assert suggest_period(0.2, 4, 0.25) > suggest_period(0.2, 400, 0.25)

    def test_period_clamped(self):
        assert 1 <= suggest_period(0.2, 1, 0.01) <= 64
        assert suggest_period(0.2, 10**6, 0.5) == 1

    def test_validation(self):
        with pytest.raises(ModelError):
            suggest_deadband(0.2, 10, 4, trigger_rate=0.0)
        with pytest.raises(ModelError):
            suggest_period(0.2, 10, 0.0)
