"""Tests for repro.experiments.parallel — sweep runner, seeds, cache."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.parallel import (
    RunConfig,
    SweepOutcome,
    SweepPolicy,
    config_key,
    run_sweep,
)
from repro.utils.rng import derive_seed


class TestRunConfig:
    def test_explicit_seed_passes_through(self):
        assert RunConfig("fig1", seed=123).resolved_seed(base_seed=0) == 123

    def test_derived_seed_matches_derive_seed(self):
        cfg = RunConfig("fig2")
        assert cfg.resolved_seed(7) == derive_seed(7, "sweep", "fig2")

    def test_derived_seed_is_stable_and_name_keyed(self):
        a = RunConfig("fig2").resolved_seed(0)
        assert a == RunConfig("fig2").resolved_seed(0)
        assert a != RunConfig("fig3").resolved_seed(0)
        assert a != RunConfig("fig2").resolved_seed(1)


class TestConfigKey:
    def test_stable(self):
        cfg = RunConfig("fig1", quick=True)
        assert config_key(cfg, 5) == config_key(cfg, 5)

    def test_sensitive_to_every_field(self):
        base = config_key(RunConfig("fig1", quick=True), 5)
        assert config_key(RunConfig("fig1", quick=True), 6) != base
        assert config_key(RunConfig("fig1", quick=False), 5) != base
        assert config_key(RunConfig("fig2", quick=True), 5) != base

    def test_is_hex_sha256(self):
        key = config_key(RunConfig("fig1"), 0)
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestRunSweep:
    CFG = RunConfig("fig1", seed=3, quick=True)

    def test_jobs_below_one_raises(self):
        with pytest.raises(ExperimentError):
            run_sweep([self.CFG], jobs=0)

    def test_inline_run_and_outcome_fields(self):
        (out,) = run_sweep([self.CFG], jobs=1)
        assert isinstance(out, SweepOutcome)
        assert out.config == self.CFG
        assert out.seed == 3
        assert out.cached is False
        assert out.key == config_key(self.CFG, 3)
        assert out.result.name

    def test_bare_names_are_normalised(self):
        (out,) = run_sweep(["fig1"], jobs=1, base_seed=9)
        assert out.config == RunConfig("fig1")
        assert out.seed == derive_seed(9, "sweep", "fig1")

    def test_cache_roundtrip(self, tmp_path):
        (first,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        assert first.cached is False
        assert (tmp_path / f"{first.key}.json").exists()
        (second,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        assert second.cached is True
        assert second.result.to_dict() == first.result.to_dict()

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        (first,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        path = tmp_path / f"{first.key}.json"
        path.write_text("{not json", encoding="utf-8")
        (again,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        assert again.cached is False  # corrupt entry treated as a miss...
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["key"] == first.key  # ...and rewritten intact

    def test_truncated_cache_entry_is_recomputed(self, tmp_path):
        # torn write: valid JSON prefix cut mid-document
        (first,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        path = tmp_path / f"{first.key}.json"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        (again,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        assert again.cached is False
        assert again.result.to_dict() == first.result.to_dict()

    def test_malformed_result_payload_is_recomputed(self, tmp_path):
        # valid JSON, right key, but a payload ExperimentResult.from_dict
        # rejects — this used to raise out of the sweep instead of healing
        (first,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        path = tmp_path / f"{first.key}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["result"] = {"bogus": True}
        path.write_text(json.dumps(payload), encoding="utf-8")
        (again,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        assert again.cached is False
        assert again.result.to_dict() == first.result.to_dict()

    def test_strict_policy_propagates_original_exception(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_sweep([RunConfig("no-such-experiment", seed=1)], jobs=1)

    def test_key_mismatch_is_a_miss(self, tmp_path):
        (first,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        path = tmp_path / f"{first.key}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload), encoding="utf-8")
        (again,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        assert again.cached is False

    def test_on_result_fires_for_fresh_and_cached(self, tmp_path):
        seen: list[bool] = []
        run_sweep(
            [self.CFG], jobs=1, cache_dir=tmp_path,
            on_result=lambda out: seen.append(out.cached),
        )
        run_sweep(
            [self.CFG], jobs=1, cache_dir=tmp_path,
            on_result=lambda out: seen.append(out.cached),
        )
        assert seen == [False, True]

    def test_parallel_matches_serial_and_preserves_order(self, tmp_path):
        configs = [
            RunConfig("fig1", seed=3, quick=True),
            RunConfig("fig1", seed=4, quick=True),
        ]
        serial = run_sweep(configs, jobs=1)
        parallel = run_sweep(configs, jobs=2)
        assert [o.config for o in parallel] == configs
        for a, b in zip(serial, parallel):
            assert a.seed == b.seed
            assert a.key == b.key
            assert a.result.to_dict() == b.result.to_dict()

    def test_jobs_above_one_dispatch_to_isolated_workers(self, monkeypatch):
        # regression: jobs>1 without a timeout used to fall through to the
        # strictly sequential inline path, silently losing all parallelism
        import repro.experiments.parallel as par

        def no_inline(sweep, pending):
            raise AssertionError("inline path used despite jobs>1")

        monkeypatch.setattr(par, "_run_inline", no_inline)
        configs = [
            RunConfig("fig1", seed=3, quick=True),
            RunConfig("fig1", seed=4, quick=True),
        ]
        outcomes = run_sweep(configs, jobs=2)
        assert [o.ok for o in outcomes] == [True, True]

    def test_single_pending_config_runs_inline_despite_jobs(self, monkeypatch):
        # one pending config gains nothing from process spin-up
        import repro.experiments.parallel as par

        def no_isolated(sweep, pending, jobs, faults):
            raise AssertionError("spawned workers for a single pending config")

        monkeypatch.setattr(par, "_run_isolated", no_isolated)
        (out,) = run_sweep([self.CFG], jobs=4)
        assert out.ok

    def test_cache_hits_skip_the_pool(self, tmp_path, monkeypatch):
        run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)

        import repro.experiments.parallel as par

        def boom(payload):
            raise AssertionError("worker ran despite a warm cache")

        monkeypatch.setattr(par, "_execute", boom)
        (out,) = run_sweep([self.CFG], jobs=1, cache_dir=tmp_path)
        assert out.cached is True


class TestSweepObservability:
    """Span aggregation and the live monitor around run_sweep."""

    def test_inline_sweep_credits_attempt_span(self):
        from repro.obs import profiling

        with profiling() as prof:
            (out,) = run_sweep([RunConfig("fig3", seed=3, quick=True)], jobs=1)
        assert out.ok
        stats = prof.stats()
        assert stats["sweep.attempt"].count == 1
        assert stats["sweep.attempt"].total_ns > 0
        # inline attempts run engines in-process: step spans land directly
        assert "step" in stats and stats["step"].count > 0

    def test_isolated_sweep_merges_worker_spans(self):
        from repro.obs import profiling

        configs = [
            RunConfig("fig3", seed=3, quick=True),
            RunConfig("fig3", seed=4, quick=True),
        ]
        with profiling() as prof:
            outcomes = run_sweep(configs, jobs=2)
        assert all(o.ok for o in outcomes)
        stats = prof.stats()
        # worker-side engine time arrives re-rooted under sweep.worker/
        assert stats["sweep.worker/step"].count > 0
        assert any(p.startswith("sweep.worker/step/") for p in stats)
        assert stats["sweep.attempt"].count == 2

    def test_unprofiled_sweep_ships_no_spans(self, monkeypatch):
        import repro.experiments.parallel as par

        shipped = []
        original = par._WorkerTask.harvest

        def spy(self):
            status, payload, spans = original(self)
            shipped.append(spans)
            return status, payload, spans

        monkeypatch.setattr(par._WorkerTask, "harvest", spy)
        configs = [
            RunConfig("fig1", seed=3, quick=True),
            RunConfig("fig1", seed=4, quick=True),
        ]
        outcomes = run_sweep(configs, jobs=2)
        assert all(o.ok for o in outcomes)
        assert shipped and all(s is None for s in shipped)

    def test_monitor_sees_lifecycle_and_final_emit(self):
        from repro.obs import SweepProgress

        lines = []
        clock = iter(float(i) for i in range(1000))
        monitor = SweepProgress(
            2, jobs=1, interval=0.0, sink=lines.append, clock=lambda: next(clock)
        )
        configs = [
            RunConfig("fig1", seed=3, quick=True),
            RunConfig("fig1", seed=4, quick=True),
        ]
        outcomes = run_sweep(configs, jobs=1, monitor=monitor)
        assert all(o.ok for o in outcomes)
        assert monitor.completed == 2
        assert monitor.ewma_attempt_seconds is not None
        assert lines and lines[-1].startswith("sweep: 2/2 done")

    def test_monitor_counts_retries_and_quarantines(self):
        from repro.obs import SweepProgress
        from repro.testing import FaultPlan

        lines = []
        clock = iter(float(i) for i in range(1000))
        monitor = SweepProgress(
            1, interval=0.0, sink=lines.append, clock=lambda: next(clock)
        )
        (out,) = run_sweep(
            [RunConfig("fig1", seed=3, quick=True)],
            jobs=1,
            policy=SweepPolicy(max_retries=0, quarantine=True, quarantine_after=1),
            faults=FaultPlan.parse("raise:fig1:0"),
            monitor=monitor,
        )
        assert not out.ok
        assert monitor.failures == 1 and monitor.quarantined == 1
        assert lines[-1].startswith("sweep: 0/1 done")
