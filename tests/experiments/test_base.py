"""Tests for repro.experiments.base — the ExperimentResult container."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult(name="demo", description="a demo result")
    r.add_table("tbl", ["a", "b"], [(1, 2.5), (3, 4.5)])
    r.add_series("curve1", [1, 2, 3], [1.0, 2.0, 3.0])
    r.add_series("curve2", [1, 2, 3], [3.0, 2.0, 1.0])
    r.add_note("remember this")
    r.scalars["answer"] = 42.0
    return r


class TestRender:
    def test_contains_all_sections(self, result):
        text = result.render()
        assert "demo" in text
        assert "tbl" in text
        assert "curve1" in text
        assert "answer = 42" in text
        assert "note: remember this" in text

    def test_empty_result_renders(self):
        text = ExperimentResult(name="x", description="y").render()
        assert "x" in text


class TestJsonExport:
    def test_roundtrip(self, result, tmp_path):
        out = tmp_path / "r.json"
        result.save_json(out)
        data = json.loads(out.read_text())
        assert data["name"] == "demo"
        assert data["tables"][0]["headers"] == ["a", "b"]
        assert data["tables"][0]["rows"] == [[1, 2.5], [3, 4.5]]
        assert data["series"][0]["name"] == "curve1"
        assert data["scalars"]["answer"] == 42.0
        assert data["notes"] == ["remember this"]

    def test_to_dict_is_json_safe(self, result):
        json.dumps(result.to_dict())  # must not raise


class TestSvgExport:
    def test_all_series_plotted(self, result, tmp_path):
        out = tmp_path / "fig.svg"
        result.to_svg(out, xlabel="x", ylabel="y")
        root = ET.fromstring(out.read_text())
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f".//{ns}polyline")) == 2

    def test_series_selection(self, result, tmp_path):
        out = tmp_path / "fig.svg"
        result.to_svg(out, series=["curve2"])
        root = ET.fromstring(out.read_text())
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f".//{ns}polyline")) == 1

    def test_no_matching_series_raises(self, result, tmp_path):
        with pytest.raises(ExperimentError):
            result.to_svg(tmp_path / "fig.svg", series=["nope"])

    def test_empty_result_raises(self, tmp_path):
        r = ExperimentResult(name="x", description="y")
        with pytest.raises(ExperimentError):
            r.to_svg(tmp_path / "fig.svg")
