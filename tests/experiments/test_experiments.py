"""Tests for the experiment modules (quick configurations).

Each experiment is run at reduced size and its *shape claims* — the
qualitative statements the paper makes — are asserted, not just smoke.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation,
    adaptation,
    apps_eval,
    costs,
    example1,
    fig1,
    fig2,
    fig3,
    ordered,
    pareto,
    theory,
)


class TestPareto:
    @pytest.fixture(scope="class")
    def result(self):
        return pareto.run(n=600, d=10, rhos=(0.05, 0.2, 0.5), replications=1, seed=0)

    def test_makespan_falls_with_rho(self, result):
        s = result.scalars
        assert s["makespan_rho0.5"] < s["makespan_rho0.05"]

    def test_waste_rises_with_rho(self, result):
        s = result.scalars
        assert s["waste_rho0.5"] > s["waste_rho0.05"]

    def test_delivered_waste_tracks_target(self, result):
        assert result.scalars["waste_rho0.2"] == pytest.approx(0.2, abs=0.1)

    def test_validation(self):
        with pytest.raises(Exception):
            pareto.run(n=100, replications=0)
        with pytest.raises(Exception):
            pareto.run(n=100, rhos=(0.0,))


class TestCosts:
    def test_optimal_rho_nonincreasing_in_abort_factor(self):
        res = costs.run(
            n=600,
            d=10,
            abort_factors=(0.25, 4.0),
            rhos=(0.05, 0.2, 0.45),
            machine_size=64,
            replications=1,
            seed=1,
        )
        assert res.scalars["best_rho_factor4"] <= res.scalars["best_rho_factor0.25"]

    def test_validation(self):
        with pytest.raises(Exception):
            costs.run(n=100, replications=0)
        with pytest.raises(Exception):
            costs.run(n=100, idle_power=2.0)


class TestOrdered:
    @pytest.fixture(scope="class")
    def result(self):
        return ordered.run(
            num_stations=12, num_jobs=15, end_time=10.0, fixed_ms=(1, 4, 16), seed=2
        )

    def test_sequential_baseline_has_unit_speedup(self, result):
        assert result.scalars["speedup_m1"] == pytest.approx(1.0)

    def test_speedup_saturates(self, result):
        assert result.scalars["speedup_m16"] <= 2.0 * result.scalars["speedup_m4"]

    def test_hybrid_reported(self, result):
        assert result.scalars["hybrid_speedup"] > 0
        assert result.scalars["hybrid_mean_m"] >= 2


class TestFig1:
    def test_panels_valid(self):
        res = fig1.run(n=16, d=2.5, m=8, panels=4, seed=0)
        assert res.scalars["all_panels_valid"] == 1.0
        assert len(res.tables) == 4

    def test_panel_structure(self):
        p = fig1.panel(12, 2.0, 6, seed=1)
        assert len(p["order"]) == 6
        assert sorted(p["committed"] + p["aborted"]) == sorted(p["order"])
        assert p["independent"] and p["maximal"]

    def test_render_shows_commit_order(self):
        res = fig1.run(panels=1, seed=2)
        assert "chosen (commit order)" in res.render()


@pytest.fixture(scope="module")
def fig2_result():
    return fig2.run(n=400, d=8, grid_size=10, reps=60, seed=0)


class TestFig2:
    def test_three_curves_present(self, fig2_result):
        names = [name.split(" (")[0] for name, _, _ in fig2_result.series]
        assert names == ["worst-case bound", "random graph", "cliques+isolated"]

    def test_bound_dominates_random(self, fig2_result):
        assert fig2_result.scalars["bound_dominates_random_fraction"] == 1.0

    def test_curves_nondecreasing_up_to_noise(self, fig2_result):
        for name, _, ys in fig2_result.series:
            arr = np.asarray(ys)
            assert np.all(np.diff(arr) > -0.08), name

    def test_initial_derivative_scalar(self, fig2_result):
        assert fig2_result.scalars["initial_derivative_formula"] == pytest.approx(
            8 / (2 * 399)
        )

    def test_average_degrees_matched(self, fig2_result):
        assert fig2_result.scalars["random_d"] == pytest.approx(8.0, abs=0.01)
        assert fig2_result.scalars["cliques_d"] == pytest.approx(8.0, abs=0.6)

    def test_render_contains_table(self, fig2_result):
        text = fig2_result.render()
        assert "worst-case" in text and "FIG2" in text

    def test_cliques_flatten_random_keeps_growing(self, fig2_result):
        """Fig. 2 shape: the cliques∪isolated curve saturates well below
        the random graph at m = n."""
        series = {name: np.asarray(ys) for name, _, ys in fig2_result.series}
        assert series["cliques+isolated"][-1] < series["random graph"][-1]


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(n=1000, degrees=(16,), rho=0.2, steps=120, seed=3)

    def test_hybrid_much_faster_than_a(self, result):
        assert result.scalars["settle_hybrid_d16"] * 2 <= result.scalars["settle_recA_d16"]

    def test_hybrid_settles_fast(self, result):
        """Paper: ≈15 steps; allow 2x at this reduced size."""
        assert result.scalars["settle_hybrid_d16"] <= 30

    def test_tail_conflict_ratio_near_rho(self, result):
        table = result.tables[0]
        row = table[2][0]
        r_tail_hybrid = row[5]
        assert r_tail_hybrid == pytest.approx(0.2, abs=0.08)


class TestExample1:
    def test_exact_expectation_is_two(self):
        res = example1.run(sizes=(8, 16), reps=300, seed=1)
        assert res.scalars["exact_n8"] == pytest.approx(2.0)
        assert res.scalars["exact_n16"] == pytest.approx(2.0)

    def test_mc_confirms(self):
        res = example1.run(sizes=(10,), reps=3000, seed=2)
        _, _, rows = res.tables[0]
        n, max_is, exact, mc, half, bm = rows[0]
        assert abs(mc - exact) <= 3 * half
        assert max_is == 11

    def test_exact_closed_form_function(self):
        assert example1.expected_committed_exact(5) == pytest.approx(2.0)


class TestTheory:
    @pytest.fixture(scope="class")
    def result(self):
        return theory.run(n=170, d=16, reps=400, seed=4)

    def test_no_thm2_violations(self, result):
        assert result.scalars["thm2_violations"] == 0.0

    def test_cor3_smart_start_value(self, result):
        assert result.scalars["cor3_alpha_half_bound"] == pytest.approx(0.213, abs=5e-4)

    def test_prop2_rows_match(self, result):
        title, headers, rows = result.tables[0]
        for name, n, d, formula, mc, half in rows:
            assert abs(mc - formula) <= 3 * half + 2e-3, name

    def test_thm3_rows_match(self, result):
        title, headers, rows = result.tables[1]
        for m, exact, mc, half in rows:
            # +0.01 absolute slack: near saturation every draw hits every
            # clique, so the MC half-width collapses to zero while the
            # closed form is still a hair below s
            assert abs(mc - exact) <= 3 * half + 0.01

    def test_divisibility_guard(self):
        with pytest.raises(ValueError):
            theory.run(n=100, d=16)


class TestAdaptation:
    def test_hybrid_tracks_step_profile(self):
        res = adaptation.run(profiles=("step",), total_tasks=600, seed=5)
        lag_hybrid = res.scalars["step_hybrid_mean_lag"]
        lag_a = res.scalars["step_recA_mean_lag"]
        assert lag_hybrid < lag_a
        assert lag_hybrid <= 40

    def test_transition_lag_helper(self):
        from repro.apps.profiles import Phase, graph_for_parallelism

        phases = [Phase(5, graph_for_parallelism(2, 10)), Phase(5, graph_for_parallelism(2, 10))]
        m_trace = np.array([2, 2, 10, 10, 10, 3, 10, 10, 10, 10])
        lags = adaptation.transition_lags(phases, m_trace, [10, 10])
        assert lags == [2, 1]


class TestAppsEval:
    @pytest.fixture(scope="class")
    def result(self):
        return apps_eval.run(apps=("coloring",), scale=200, fixed_ms=(2, 64), max_steps=3000, seed=6)

    def test_small_fixed_slow_but_clean(self, result):
        steps_2 = result.scalars["coloring_fixed-2_steps"]
        steps_64 = result.scalars["coloring_fixed-64_steps"]
        assert steps_2 > steps_64
        assert result.scalars["coloring_fixed-2_waste"] <= result.scalars["coloring_fixed-64_waste"]

    def test_hybrid_sits_on_the_tradeoff_frontier(self, result):
        """Hybrid lands between the fixed extremes on BOTH axes: faster
        than the small allocation, far less wasteful than the big one."""
        s = result.scalars
        assert s["coloring_fixed-64_steps"] <= s["coloring_hybrid_steps"] <= s["coloring_fixed-2_steps"]
        assert s["coloring_fixed-2_waste"] <= s["coloring_hybrid_waste"] <= s["coloring_fixed-64_waste"]


class TestBuildApp:
    def test_all_known_apps_constructible(self):
        for name in ("delaunay", "boruvka", "coloring", "sp", "maxflow", "components"):
            app = apps_eval.build_app(name, 60, seed=0)
            assert hasattr(app, "build_engine")
            assert hasattr(app, "workset")

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            apps_eval.build_app("nope", 60, seed=0)


class TestAblation:
    def test_runs_and_orders_sanely(self):
        res = ablation.run(n=600, d=12, steps=100, replications=2, seed=7)
        settle = {k.removeprefix("settle::"): v for k, v in res.scalars.items() if k.startswith("settle::")}
        assert settle["oracle"] == 0.0
        assert settle["smart start"] <= settle["A-only"]
        assert settle["hybrid (paper)"] <= settle["A-only"]
