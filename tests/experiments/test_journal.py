"""Tests for repro.experiments.journal — durable sweep checkpointing."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.journal import JournalState, SweepJournal, load_journal


class TestLoadJournal:
    def test_missing_file_is_empty_state(self, tmp_path):
        state = load_journal(tmp_path / "nope.jsonl")
        assert state.completed == {} and state.failures == {}
        assert state.skipped_lines == 0

    def test_replays_failures_completions_and_quarantines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        records = [
            {"event": "failed", "key": "a", "experiment": "x", "attempt": 0,
             "kind": "timeout", "error": "t"},
            {"event": "failed", "key": "a", "experiment": "x", "attempt": 1,
             "kind": "crash", "error": "c"},
            {"event": "completed", "key": "a", "experiment": "x", "seed": 3,
             "attempt": 2},
            {"event": "quarantined", "key": "b", "experiment": "y",
             "failures": 3, "error": "boom"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        state = load_journal(path)
        assert state.failures == {"a": 2}
        assert state.timeouts == {"a": 1}
        assert "a" in state.completed and state.completed["a"]["seed"] == 3
        assert state.quarantined["b"]["failures"] == 3

    def test_torn_trailing_line_is_skipped_not_fatal(self, tmp_path):
        # the exact failure the journal exists to survive: SIGKILL mid-append
        path = tmp_path / "j.jsonl"
        good = json.dumps({"event": "failed", "key": "a", "kind": "error"})
        path.write_text(good + "\n" + '{"event": "comple')
        state = load_journal(path)
        assert state.failures == {"a": 1}
        assert state.skipped_lines == 1

    def test_non_object_and_blank_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('[1, 2]\n\n"str"\n')
        state = load_journal(path)
        assert state.skipped_lines == 2  # blank lines are not an anomaly

    def test_unknown_events_and_keyless_records_are_ignored(self):
        state = JournalState()
        state.apply({"event": "sweep_start", "configs": 2})
        state.apply({"event": "completed"})  # no key
        assert state.completed == {} and state.failures == {}


class TestSweepJournal:
    def test_fresh_journal_truncates(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "failed", "key": "old", "kind": "error"}\n')
        with SweepJournal(path, resume=False) as journal:
            assert journal.prior_failures("old") == 0
        assert path.read_text() == ""

    def test_resume_appends_and_replays(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path) as journal:
            journal.record("failed", key="k", experiment="x", attempt=0,
                           kind="timeout", error="t")
        with SweepJournal(path, resume=True) as journal:
            assert journal.prior_failures("k") == 1
            assert journal.prior_timeouts("k") == 1
            journal.record("completed", key="k", experiment="x", seed=1, attempt=1)
            assert journal.is_completed("k")
        assert len(path.read_text().splitlines()) == 2

    def test_record_is_durable_line_by_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record("quarantined", key="q", experiment="x", failures=2,
                       error="boom")
        # readable by another process BEFORE close: flushed per record
        state = load_journal(path)
        assert "q" in state.quarantined
        journal.close()
        assert journal.is_quarantined("q")

    def test_unopenable_path_raises_experiment_error(self, tmp_path):
        with pytest.raises(ExperimentError, match="journal"):
            SweepJournal(tmp_path)  # a directory, not a file
