"""Tests for the experiment CLI runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2",
            "fig3",
            "example1",
            "theory",
            "adaptation",
            "apps",
            "ablation",
            "ordered",
            "pareto",
            "costs",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            run_experiment("nope")

    def test_quick_run_returns_result(self):
        res = run_experiment("example1", seed=0, quick=True)
        assert res.name.startswith("EX1")


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["example1", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "EX1" in out

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_output_dir_writes_artifacts(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["example1", "--quick", "--output-dir", str(out)]) == 0
        capsys.readouterr()
        assert (out / "example1.txt").exists()
        assert (out / "example1.json").exists()
        # example1 has no series, so no SVG
        assert not (out / "example1.svg").exists()

    def test_output_dir_svg_for_series_experiments(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["fig3", "--quick", "--output-dir", str(out)]) == 0
        capsys.readouterr()
        assert (out / "fig3.svg").exists()

    def test_seed_changes_nothing_in_exact_values(self, capsys):
        main(["example1", "--quick", "--seed", "1"])
        first = capsys.readouterr().out
        main(["example1", "--quick", "--seed", "1"])
        second = capsys.readouterr().out
        assert first == second
