"""Tests for the experiment CLI runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1",
            "fig2",
            "fig3",
            "example1",
            "theory",
            "adaptation",
            "apps",
            "ablation",
            "ordered",
            "pareto",
            "costs",
            "relaxation",
            "sharding",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            run_experiment("nope")

    def test_quick_run_returns_result(self):
        res = run_experiment("example1", seed=0, quick=True)
        assert res.name.startswith("EX1")


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["example1", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "EX1" in out

    def test_unknown_experiment_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_output_dir_writes_artifacts(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["example1", "--quick", "--output-dir", str(out)]) == 0
        capsys.readouterr()
        assert (out / "example1.txt").exists()
        assert (out / "example1.json").exists()
        # example1 has no series, so no SVG
        assert not (out / "example1.svg").exists()

    def test_output_dir_svg_for_series_experiments(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        assert main(["fig3", "--quick", "--output-dir", str(out)]) == 0
        capsys.readouterr()
        assert (out / "fig3.svg").exists()

    def test_seed_changes_nothing_in_exact_values(self, capsys):
        main(["example1", "--quick", "--seed", "1"])
        first = capsys.readouterr().out
        main(["example1", "--quick", "--seed", "1"])
        second = capsys.readouterr().out
        assert first == second


class TestObservabilityFlags:
    def test_profile_prints_span_tree(self, capsys):
        assert main(["fig3", "--quick", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "step:" in out and "resolve:" in out
        assert "profile:" in out and "phase coverage" in out

    def test_profile_every_samples_steps(self, capsys):
        assert main(["fig3", "--quick", "--profile", "--profile-every", "4"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out and "step:" in out

    def test_profile_every_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig3", "--quick", "--profile-every", "0"])

    def test_telemetry_out_writes_both_files(self, capsys, tmp_path):
        import json

        from repro.obs import restore_registry

        base = tmp_path / "tele" / "run"
        assert main(["fig3", "--quick", "--telemetry-out", str(base)]) == 0
        out = capsys.readouterr().out
        prom = base.with_name("run.prom")
        js = base.with_name("run.json")
        assert prom.exists() and js.exists()
        assert f"telemetry: wrote {prom} and {js}" in out
        text = prom.read_text(encoding="utf-8")
        assert text.endswith("# EOF\n") and "engine_steps_total" in text
        restored = restore_registry(json.loads(js.read_text(encoding="utf-8")))
        assert "engine.steps" in restored.names()
        # --telemetry-out alone implies collection but not the printed dump
        assert "metrics:" not in out

    def test_trace_summary_reports_dropped_events(self, capsys, tmp_path, monkeypatch):
        # shrink the ring so the run wraps it; the head of the trace is
        # dropped but the surviving complete run must still replay
        import repro.obs

        real_recording = repro.obs.recording
        monkeypatch.setattr(
            repro.obs,
            "recording",
            lambda path=None: real_recording(path, capacity=200),
        )
        trace = tmp_path / "trace.jsonl"
        assert main(["fig3", "--quick", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "dropped by the ring" in out
        assert "deterministic replay OK" in out

    def test_trace_summary_silent_when_complete(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["example1", "--quick", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "dropped" not in out

    def test_live_enables_sweep_mode_and_emits_status(self, capsys):
        assert main(["example1", "--quick", "--live"]) == 0
        captured = capsys.readouterr()
        assert "[sweep] example1" in captured.err
        assert "sweep: 1/1 done" in captured.err
