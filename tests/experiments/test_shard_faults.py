"""Fault-injection tests for the process-backed shard runtime.

The sweep harness's :class:`repro.testing.FaultPlan` matching extends to
shard workers under the identity ``("shard:<i>", attempt)``, where
*attempt* counts that shard's cumulative failures.  The headline
guarantee mirrors the sweep suite: a run whose shard workers are killed,
hung, or made to raise mid-run — or that is interrupted and resumed from
a round journal with a torn final line — finishes **byte-identical** to
an undisturbed run.  That is only possible because phase-1 resolution is
a pure function of (adjacency, sub-batch): a respawned worker re-serves
the round with no state to lose.

Note the shard targets: the ``kill:shard:1:0`` colon DSL cannot express
them (the shard id adds a fourth ``:`` field), so plans are built
programmatically, passed in the JSON form, or spelled with the ``@``
separator (``kill@shard:1``) — all three are exercised here.

Seeds derive from ``REPRO_TEST_SEED`` (default 0) so CI's flaky-hunter
job can re-run this suite under several seeds.
"""

from __future__ import annotations

import os

import pytest

from repro.config import RunConfig
from repro.errors import FaultInjectionError, RuntimeEngineError
from repro.graph.generators import gnm_random
from repro.obs import TraceRecorder
from repro.runtime.sharded import run_sharded
from repro.testing import FaultPlan, FaultSpec

BASE_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))
GRAPH_SEED = 2011
ENGINE_SEED = 8 + BASE_SEED
MAX_STEPS = 25


def _graph():
    return gnm_random(200, 8, seed=GRAPH_SEED)


def _config(max_steps: int = MAX_STEPS) -> RunConfig:
    return RunConfig(
        workload="consuming",
        rho=0.25,
        m_max=64,
        order="sharded:3",
        max_steps=max_steps,
    )


def _run(**kwargs) -> str:
    recorder = TraceRecorder()
    run_sharded(
        _config(kwargs.pop("max_steps", MAX_STEPS)),
        _graph(),
        seed=ENGINE_SEED,
        recorder=recorder,
        **kwargs,
    )
    return recorder.to_jsonl()


@pytest.fixture(scope="module")
def baseline() -> str:
    """The undisturbed reference trace every faulted run must reproduce."""
    return _run()


class TestShardWorkerFaults:
    def test_killed_shard_respawns_byte_identical(self, baseline):
        plan = FaultPlan((FaultSpec("kill", "shard:1", (0,)),))
        assert _run(faults=plan) == baseline

    def test_raising_shard_respawns_byte_identical(self, baseline):
        plan = FaultPlan((FaultSpec("raise", "shard:0", (0,)),))
        assert _run(faults=plan) == baseline

    def test_hung_shard_killed_on_timeout(self, baseline):
        plan = FaultPlan((FaultSpec("hang", "shard:2", (0,), seconds=30.0),))
        assert _run(faults=plan, timeout=1.0) == baseline

    def test_every_shard_faulting_once(self, baseline):
        plan = FaultPlan(
            (
                FaultSpec("kill", "shard:0", (0,)),
                FaultSpec("raise", "shard:1", (0,)),
                FaultSpec("kill", "shard:2", (0,)),
            )
        )
        assert _run(faults=plan) == baseline

    def test_second_failure_of_same_shard_also_recovers(self, baseline):
        # attempts (0, 1): the respawned worker dies once more before
        # serving a round; the pool must keep respawning and re-dispatching
        plan = FaultPlan((FaultSpec("kill", "shard:1", (0, 1)),))
        assert _run(faults=plan) == baseline

    def test_non_matching_plan_changes_nothing(self, baseline):
        plan = FaultPlan((FaultSpec("kill", "shard:9", (0,)),))
        assert _run(faults=plan) == baseline

    def test_respawn_budget_exhausted_raises(self):
        # attempts=None matches every incarnation: the shard can never
        # come back, so the pool must give up loudly, not spin forever
        plan = FaultPlan((FaultSpec("kill", "shard:1", None),))
        with pytest.raises(RuntimeEngineError, match="respawn"):
            _run(faults=plan)


class TestPlanForms:
    def test_colon_dsl_cannot_express_shard_targets(self):
        # the shard id introduces a fourth ':' field — the DSL rejects it
        with pytest.raises(FaultInjectionError, match="too many"):
            FaultPlan.parse("kill:shard:1:0")

    def test_json_form_carries_shard_targets(self, baseline):
        plan = FaultPlan((FaultSpec("kill", "shard:1", (0,)),))
        parsed = FaultPlan.parse(plan.to_json())
        assert parsed == plan
        assert _run(faults=parsed) == baseline


class TestFlightRecorder:
    """Crash drills with the flight recorder armed.

    The recorder is a pure observer: arming it (and salvaging bundles
    mid-run) must not move a byte of the trace, and each dead worker's
    bundle must name the shard, the failure, the last round it began and
    the spans still open at death.
    """

    def test_kill_at_shard_dsl_round_trips(self):
        # the '@' form exists precisely because shard targets contain ':'
        plan = FaultPlan.parse("kill@shard:2")
        assert plan.specs[0].experiment == "shard:2"
        assert plan.specs[0].attempts == (0,)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_faulted_run_with_recorder_is_byte_identical(self, baseline, tmp_path):
        plan = FaultPlan.parse("kill@shard:2")
        trace = _run(
            faults=plan, flight_dir=tmp_path / "flightrec", run_id="drill"
        )
        assert trace == baseline

    def test_bundle_names_shard_round_and_open_spans(self, tmp_path):
        from repro.obs import diagnose_crash

        plan = FaultPlan.parse("kill@shard:2")
        _run(faults=plan, flight_dir=tmp_path / "flightrec", run_id="drill")
        bundles = sorted((tmp_path / "flightrec" / "drill").glob("shard-*.jsonl"))
        assert [b.name for b in bundles] == ["shard-2.jsonl"]
        report = diagnose_crash(bundles[0])
        assert report.shard == 2
        assert report.attempt == 0  # the incarnation that died, not its heir
        assert "crash" in report.reason
        assert report.died_mid_round
        assert report.last_step is not None
        assert report.open_spans == ("shard.round",)

    def test_undisturbed_run_leaves_no_bundles(self, baseline, tmp_path):
        trace = _run(flight_dir=tmp_path / "flightrec", run_id="calm")
        assert trace == baseline
        assert not list((tmp_path / "flightrec" / "calm").glob("shard-*.jsonl"))


class TestJournalResume:
    def test_resume_after_torn_journal_is_byte_identical(self, baseline, tmp_path):
        journal = tmp_path / "shard-journal.jsonl"
        _run(max_steps=12, journal=journal)
        # tear the final record mid-write, as a crash would
        lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
        journal.write_text(
            "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2],
            encoding="utf-8",
        )
        resumed = _run(journal=journal, resume=True)
        assert resumed == baseline

    def test_resume_with_untouched_journal_is_byte_identical(
        self, baseline, tmp_path
    ):
        journal = tmp_path / "shard-journal.jsonl"
        _run(max_steps=12, journal=journal)
        assert _run(journal=journal, resume=True) == baseline

    def test_journal_shard_count_mismatch_rejected(self, tmp_path):
        journal = tmp_path / "shard-journal.jsonl"
        _run(max_steps=5, journal=journal)
        config = RunConfig(
            workload="consuming",
            rho=0.25,
            m_max=64,
            order="sharded:4",
            max_steps=5,
        )
        with pytest.raises(RuntimeEngineError, match="journal"):
            run_sharded(
                config,
                _graph(),
                seed=ENGINE_SEED,
                journal=journal,
                resume=True,
            )
