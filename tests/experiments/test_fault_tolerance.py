"""Fault-injection tests for the sweep harness.

Exercises :mod:`repro.experiments.parallel` against the deliberate
failures of :class:`repro.testing.FaultPlan`: worker crashes, hung
workers killed on timeout, poison-config quarantine, corrupted cache
entries, and — the headline guarantee — a sweep killed mid-run that
resumes to results byte-identical to an uninterrupted one.

Seeds derive from the ``REPRO_TEST_SEED`` environment variable (default
0) so CI's flaky-hunter job can re-run this suite under several seeds.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.config import SweepConfig
from repro.errors import ExperimentError, SweepAbortedError
from repro.experiments.journal import DEFAULT_JOURNAL_NAME, load_journal
from repro.experiments.parallel import RunConfig, SweepPolicy, run_sweep
from repro.obs import collecting_metrics
from repro.testing import FaultPlan, FaultSpec
from repro.utils.rng import derive_seed

BASE_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def seed_for(name: str) -> int:
    return derive_seed(BASE_SEED, "fault-test", name)


# ----------------------------------------------------------------------
# crash / hang / quarantine
# ----------------------------------------------------------------------
def test_worker_crash_is_retried_and_recovers():
    # the worker dies via os._exit before reporting; the supervisor must
    # see EOF, classify it as a crash, and retry with the SAME seed
    seed = seed_for("crash")
    plan = FaultPlan((FaultSpec("exit", experiment="fig1", attempts=(0,)),))
    policy = SweepPolicy(max_retries=1, backoff_base=0.0)
    with collecting_metrics() as registry:
        (out,) = run_sweep(
            [RunConfig("fig1", seed=seed, quick=True)], policy=policy, faults=plan
        )
    assert out.ok
    assert out.seed == seed  # crash retries keep the config's seed
    assert out.attempts == 2
    assert out.failures == 1
    assert registry.counter("sweep.crashes").value == 1
    assert registry.counter("sweep.retries").value == 1


def test_hung_worker_is_killed_on_timeout_and_reseeded():
    seed = seed_for("hang")
    plan = FaultPlan(
        (FaultSpec("hang", experiment="fig1", attempts=(0,), seconds=30.0),)
    )
    policy = SweepPolicy(timeout=1.0, max_retries=1, backoff_base=0.0)
    with collecting_metrics() as registry:
        (out,) = run_sweep(
            [RunConfig("fig1", seed=seed, quick=True)], policy=policy, faults=plan
        )
    assert out.ok
    # timeout retries derive a distinct seed to escape seed-dependent hangs
    assert out.seed == derive_seed(seed, "retry", 1)
    assert registry.counter("sweep.timeouts").value == 1
    assert registry.counter("sweep.failures").value == 1


def test_quarantined_config_is_reported_not_dropped():
    seed = seed_for("quarantine")
    plan = FaultPlan((FaultSpec("raise", experiment="fig1", attempts=None),))
    policy = SweepPolicy(max_retries=1, quarantine=True, backoff_base=0.0)
    seen = []
    outcomes = run_sweep(
        [
            RunConfig("fig1", seed=seed, quick=True),
            RunConfig("ordered", seed=seed, quick=True),
        ],
        policy=policy,
        faults=plan,
        on_result=seen.append,
    )
    assert len(outcomes) == 2  # the poison config still appears in the report
    poison, healthy = outcomes
    assert poison.status == "quarantined"
    assert poison.result is None
    assert poison.failures == 2  # initial attempt + one retry
    assert "InjectedFault" in poison.error
    assert healthy.ok and healthy.config.experiment == "ordered"
    assert {o.config.experiment for o in seen} == {"fig1", "ordered"}


def test_parallel_isolated_sweep_survives_crashes():
    seed = seed_for("parallel")
    plan = FaultPlan((FaultSpec("exit", experiment="fig1", attempts=(0,)),))
    policy = SweepPolicy(max_retries=1, quarantine=True, backoff_base=0.0)
    outcomes = run_sweep(
        [
            RunConfig("fig1", seed=seed, quick=True),
            RunConfig("ordered", seed=seed, quick=True),
        ],
        jobs=2,
        policy=policy,
        faults=plan,
    )
    assert [o.ok for o in outcomes] == [True, True]
    assert outcomes[0].failures == 1  # order preserved despite parallelism


def test_reseeded_result_keeps_provenance_across_cache_hits(tmp_path):
    # a timeout retry runs under a derived seed; the cache entry stores
    # that effective seed, and a later cache hit must report it instead
    # of misattributing the result to the config's own seed
    seed = seed_for("reseed-cache")
    plan = FaultPlan(
        (FaultSpec("hang", experiment="fig1", attempts=(0,), seconds=30.0),)
    )
    policy = SweepPolicy(timeout=1.0, max_retries=1, backoff_base=0.0)
    cache = tmp_path / "cache"
    config = RunConfig("fig1", seed=seed, quick=True)

    (first,) = run_sweep([config], cache_dir=cache, policy=policy, faults=plan)
    effective = derive_seed(seed, "retry", 1)
    assert first.ok and first.seed == effective
    assert first.reseeded

    (second,) = run_sweep([config], cache_dir=cache)
    assert second.cached
    assert second.seed == effective  # honest provenance on the hit
    assert second.reseeded


def test_supervisor_sleeps_while_all_slots_are_busy():
    # regression: with every job slot busy and launch-ready configs still
    # queued, the supervisor used to spin at 100% CPU instead of blocking
    # on the worker pipes until something finished
    plan = FaultPlan(
        (FaultSpec("hang", experiment="fig1", attempts=(0,), seconds=1.0),)
    )
    configs = [
        RunConfig("fig1", seed=1, quick=True),
        RunConfig("ordered", seed=1, quick=True),
    ]
    cpu_before = time.process_time()
    outcomes = run_sweep(configs, jobs=1, faults=plan)
    cpu = time.process_time() - cpu_before
    assert [o.ok for o in outcomes] == [True, True]
    assert cpu < 0.6, f"supervisor burned {cpu:.2f}s CPU waiting on workers"


def test_strict_policy_aborts_on_worker_crash():
    plan = FaultPlan((FaultSpec("exit", experiment="fig1", attempts=None),))
    with pytest.raises(SweepAbortedError, match="fig1"):
        run_sweep(
            [RunConfig("fig1", seed=1, quick=True)],
            policy=SweepPolicy(isolate=True),
            faults=plan,
        )


# ----------------------------------------------------------------------
# crash-safe resume (the acceptance criterion)
# ----------------------------------------------------------------------
def test_kill_mid_sweep_then_resume_is_byte_identical(tmp_path):
    configs = [
        RunConfig("fig1", seed=5, quick=True),
        RunConfig("ordered", seed=7, quick=True),
    ]
    cache = tmp_path / "cache"
    journal = cache / DEFAULT_JOURNAL_NAME
    plan = FaultPlan((FaultSpec("kill", experiment="ordered", attempts=(0,)),))

    # SIGKILL on the second config under the strict policy kills the sweep
    with pytest.raises(SweepAbortedError, match="ordered"):
        run_sweep(configs, cache_dir=cache, journal=journal, faults=plan)

    # fig1's completion and ordered's crash were journaled before the abort
    state = load_journal(journal)
    assert len(state.completed) == 1
    assert sum(state.failures.values()) == 1

    # resume under the SAME fault plan: the crash was journaled, so the
    # cumulative attempt index is now 1 and the attempt-0 kill stays cold
    resumed = run_sweep(
        configs, cache_dir=cache, journal=journal, resume=True, faults=plan
    )
    first, second = resumed
    assert first.ok and first.cached and first.attempts == 0  # no recompute
    assert second.ok and not second.cached
    assert second.seed == 7  # crash recovery keeps the config seed

    # byte-identical to a sweep that was never interrupted
    baseline = run_sweep(configs, cache_dir=tmp_path / "fresh")
    for got, want in zip(resumed, baseline):
        assert got.result.canonical_json() == want.result.canonical_json()


def test_resume_keeps_journaled_quarantine(tmp_path):
    cache = tmp_path / "cache"
    journal = cache / DEFAULT_JOURNAL_NAME
    config = RunConfig("fig1", seed=3, quick=True)
    plan = FaultPlan((FaultSpec("raise", experiment="fig1", attempts=None),))
    policy = SweepPolicy(max_retries=1, quarantine=True, backoff_base=0.0)

    (first,) = run_sweep(
        [config], cache_dir=cache, journal=journal, policy=policy, faults=plan
    )
    assert first.status == "quarantined"

    # resumed WITHOUT the fault plan: the quarantine decision still holds
    (second,) = run_sweep(
        [config], cache_dir=cache, journal=journal, resume=True, policy=policy
    )
    assert second.status == "quarantined"
    assert second.attempts == 0  # no fresh attempts were burned on poison
    assert "InjectedFault" in second.error


def test_journal_opens_with_a_sweep_start_record(tmp_path):
    # the documented journal format leads with a sweep_start record
    cache = tmp_path / "cache"
    journal = cache / DEFAULT_JOURNAL_NAME
    run_sweep(
        [RunConfig("fig1", seed=2, quick=True)], cache_dir=cache, journal=journal
    )
    first = json.loads(journal.read_text(encoding="utf-8").splitlines()[0])
    assert first["event"] == "sweep_start"
    assert first["configs"] == 1
    assert first["base_seed"] == 0
    # the record carries the whole serialised SweepConfig as provenance
    sweep = SweepConfig.from_dict(first["sweep"])
    assert sweep.runs == (RunConfig("fig1", seed=2, quick=True),)


def test_resume_without_journal_or_cache_is_an_error():
    with pytest.raises(ExperimentError, match="resume"):
        run_sweep([RunConfig("fig1", seed=1, quick=True)], resume=True)


# ----------------------------------------------------------------------
# corrupted cache entries
# ----------------------------------------------------------------------
def test_corrupt_cache_entry_is_detected_and_recomputed(tmp_path):
    cache = tmp_path / "cache"
    config = RunConfig("fig1", seed=4, quick=True)
    plan = FaultPlan((FaultSpec("corrupt-cache", experiment="fig1"),))

    (first,) = run_sweep([config], cache_dir=cache, faults=plan)
    assert first.ok  # the entry was truncated after a successful store

    with collecting_metrics() as registry:
        (second,) = run_sweep([config], cache_dir=cache)
    assert second.ok and not second.cached  # recomputed, not raised
    assert registry.counter("sweep.cache.corrupt").value == 1

    (third,) = run_sweep([config], cache_dir=cache)
    assert third.cached  # the recompute healed the entry
    assert third.result.canonical_json() == second.result.canonical_json()


# ----------------------------------------------------------------------
# policy mechanics
# ----------------------------------------------------------------------
def test_backoff_delay_is_deterministic_and_bounded():
    policy = SweepPolicy(backoff_base=0.5, backoff_cap=2.0, backoff_jitter=0.5)
    d1 = policy.backoff_delay(42, 1)
    assert d1 == policy.backoff_delay(42, 1)  # pure function of (seed, k)
    assert 0.5 <= d1 <= 0.5 * 1.5
    d5 = policy.backoff_delay(42, 5)
    assert 2.0 <= d5 <= 2.0 * 1.5  # capped despite 0.5 * 2^4 = 8
    assert policy.backoff_delay(42, 0) == 0.0
    assert policy.backoff_delay(43, 1) != d1  # jitter is keyed by seed


def test_policy_validation():
    with pytest.raises(ExperimentError):
        SweepPolicy(timeout=0)
    with pytest.raises(ExperimentError):
        SweepPolicy(max_retries=-1)
    with pytest.raises(ExperimentError):
        SweepPolicy(quarantine_after=0)
    with pytest.raises(ExperimentError):
        SweepPolicy(backoff_base=-0.1)
    assert SweepPolicy(max_retries=2).failure_budget == 3
    assert SweepPolicy(max_retries=2, quarantine_after=7).failure_budget == 7
