"""Apps as first-class registry workloads.

The apps layer is reached the same way as every built-in workload: a
name in the ``"workload"`` registry, optionally with a ``:<scale>``
suffix, flowing through ``run(RunConfig(...))`` and composing with any
commit order and selection backend.  These tests pin the registry
surface — spec parsing, self-building inputs, explicit inputs, the
``requires_order`` contract — across the whole catalog.
"""

import pytest

from repro import RunConfig
from repro.api import run
from repro.apps import (
    APP_WORKLOADS,
    DEFAULT_SCALES,
    ORDERED_APPS,
    build_app_input,
    workload_from_input,
)
from repro.errors import ConfigError
from repro.registry import WORKLOADS, parse_workload_spec

#: scales small enough that the full matrix of combinations stays fast
QUICK = {
    "boruvka": 40,
    "clustering": 30,
    "coloring": 40,
    "components": 40,
    "delaunay": 12,
    "des": 4,
    "maxflow": 20,
    "sp": 8,
}


class TestSpecParsing:
    def test_bare_name_passes_through(self):
        assert parse_workload_spec("boruvka") == ("boruvka", {})
        assert parse_workload_spec("consuming") == ("consuming", {})

    def test_scale_suffix(self):
        assert parse_workload_spec("coloring:500") == ("coloring", {"scale": 500})

    def test_trace_suffix_is_a_path(self):
        assert parse_workload_spec("trace:runs/b.wktrace") == (
            "trace",
            {"path": "runs/b.wktrace"},
        )

    def test_empty_trace_path_rejected(self):
        with pytest.raises(ConfigError, match="trace"):
            parse_workload_spec("trace:")

    def test_non_integer_scale_rejected(self):
        with pytest.raises(ConfigError, match="integer scale"):
            parse_workload_spec("boruvka:big")

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ConfigError, match="scale >= 1"):
            parse_workload_spec("boruvka:0")

    def test_third_party_colon_name_passes_through(self):
        assert parse_workload_spec("vendor:thing") == ("vendor:thing", {})


class TestCatalog:
    def test_every_app_is_registered(self):
        for name in APP_WORKLOADS:
            assert name in WORKLOADS
        assert "trace" in WORKLOADS

    def test_every_app_has_a_default_scale(self):
        assert set(DEFAULT_SCALES) == set(APP_WORKLOADS)

    @pytest.mark.parametrize("name", sorted(APP_WORKLOADS))
    def test_requires_order_matches_catalog(self, name):
        source = build_app_input(name, QUICK[name], seed=0)
        app = workload_from_input(name, source, seed=0)
        assert getattr(app, "requires_order", False) == (name in ORDERED_APPS)


class TestSelfBuildingRuns:
    @pytest.mark.parametrize("name", sorted(APP_WORKLOADS))
    def test_runs_with_no_graph(self, name):
        res = run(RunConfig(workload=f"{name}:{QUICK[name]}", seed=3))
        assert res.total_committed > 0

    def test_same_seed_same_result(self):
        cfg = RunConfig(workload="components:40", seed=9)
        assert run(cfg).total_committed == run(cfg).total_committed

    def test_explicit_input_overrides_synthesis(self):
        source = build_app_input("coloring", 35, seed=1)
        res = run(RunConfig(workload="coloring", seed=1), graph=source)
        assert res.total_committed == 35  # one commit per node coloured


class TestOrderComposition:
    @pytest.mark.parametrize("order", ["unordered", "relaxed:2"])
    def test_unordered_app_accepts_any_order(self, order):
        res = run(RunConfig(workload="boruvka:40", seed=5, order=order))
        assert res.total_committed > 0

    def test_select_backend_composes(self):
        r1 = run(RunConfig(workload="coloring:40", seed=5, select="workset"))
        r2 = run(RunConfig(workload="coloring:40", seed=5, select="incremental"))
        assert r1.total_committed == r2.total_committed == 40

    def test_ordered_app_runs_under_priority_order(self):
        res = run(RunConfig(workload="des:4", seed=2, order="ordered"))
        assert res.total_committed > 0

    @pytest.mark.parametrize("order", ["unordered", "async"])
    def test_ordered_app_rejects_unordered_at_config(self, order):
        with pytest.raises(ConfigError, match="requires in-order commits"):
            RunConfig(workload="des:4", order=order)

    def test_ordered_app_rejects_unordered_at_api(self):
        # a config built without validation tripping (bare name resolved
        # late) must still be rejected by run() itself
        cfg = RunConfig(workload="des:4", seed=1)
        object.__setattr__(cfg, "order", "unordered")
        with pytest.raises(ConfigError, match="in-order commits"):
            run(cfg)

    def test_unknown_app_lists_the_catalog(self):
        from repro.errors import RegistryError
        from repro.graph.generators import gnm_random

        with pytest.raises(RegistryError, match="boruvka.*trace"):
            run(RunConfig(workload="not-an-app", seed=0), graph=gnm_random(5, 2, seed=0))

    def test_unknown_app_without_graph_points_at_the_catalog(self):
        with pytest.raises(ConfigError, match="self-building workload"):
            run(RunConfig(workload="not-an-app", seed=0))
