"""Tests for repro.apps.boruvka."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.boruvka import (
    BoruvkaMST,
    WeightedGraph,
    kruskal_weight,
    random_weighted_graph,
)
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError


class TestWeightedGraph:
    def test_add_and_query(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 0.5)
        assert g.neighbors(0) == {1: 0.5}
        assert g.num_edges == 1

    def test_edge_update_keeps_count(self):
        g = WeightedGraph(2)
        g.add_edge(0, 1, 0.5)
        g.add_edge(0, 1, 0.7)
        assert g.num_edges == 1
        assert g.neighbors(0)[1] == 0.7

    def test_self_loop_rejected(self):
        g = WeightedGraph(2)
        with pytest.raises(ApplicationError):
            g.add_edge(1, 1, 0.1)

    def test_range_check(self):
        g = WeightedGraph(2)
        with pytest.raises(ApplicationError):
            g.add_edge(0, 5, 0.1)

    def test_edges_listed_once(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 0.1)
        g.add_edge(1, 2, 0.2)
        assert len(g.edges()) == 2


class TestRandomWeightedGraph:
    def test_connected_spanning_tree_baseline(self):
        g = random_weighted_graph(50, 1.0, seed=0)
        assert g.num_edges >= 49  # at least the spanning tree

    def test_target_density(self):
        g = random_weighted_graph(200, 8, seed=1)
        assert g.num_edges == pytest.approx(800, rel=0.05)

    def test_validation(self):
        with pytest.raises(ApplicationError):
            random_weighted_graph(0, 2)


class TestBoruvkaCorrectness:
    def test_matches_kruskal_exactly(self):
        g = random_weighted_graph(300, 6, seed=2)
        app = BoruvkaMST(g)
        app.build_engine(HybridController(0.25), seed=3).run(max_steps=10000)
        assert app.total_weight == pytest.approx(kruskal_weight(g), abs=1e-9)
        assert app.num_components() == 1
        assert len(app.mst_edges) == 299

    def test_mst_edges_are_graph_edges(self):
        g = random_weighted_graph(80, 4, seed=4)
        app = BoruvkaMST(g)
        app.build_engine(FixedController(8), seed=5).run(max_steps=5000)
        for u, v, w in app.mst_edges:
            assert g.neighbors(u).get(v) == w

    def test_mst_is_acyclic_spanning(self):
        g = random_weighted_graph(100, 5, seed=6)
        app = BoruvkaMST(g)
        app.build_engine(FixedController(16), seed=7).run(max_steps=5000)
        # union-find over mst edges: no cycle, covers all nodes
        parent = list(range(100))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v, _ in app.mst_edges:
            ru, rv = find(u), find(v)
            assert ru != rv, "cycle in MST"
            parent[ru] = rv
        assert len({find(x) for x in range(100)}) == 1

    @settings(max_examples=12, deadline=None)
    @given(st.integers(2, 60), st.floats(1.0, 6.0), st.integers(0, 1000), st.integers(1, 32))
    def test_weight_matches_kruskal_property(self, n, deg, seed, m):
        g = random_weighted_graph(n, deg, seed=seed)
        app = BoruvkaMST(g)
        app.build_engine(FixedController(m), seed=seed).run(max_steps=20000)
        assert app.total_weight == pytest.approx(kruskal_weight(g), abs=1e-9)

    def test_single_node_graph(self):
        g = WeightedGraph(1)
        app = BoruvkaMST(g)
        assert len(app.workset) == 0
        assert app.num_components() == 1

    def test_disconnected_graph_gives_forest(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 0.3)
        g.add_edge(2, 3, 0.4)
        app = BoruvkaMST(g)
        app.build_engine(FixedController(4), seed=8).run(max_steps=100)
        assert app.num_components() == 2
        assert app.total_weight == pytest.approx(0.7)


class TestParallelConflicts:
    def test_conflicts_occur_under_wide_allocation(self):
        g = random_weighted_graph(200, 6, seed=9)
        app = BoruvkaMST(g)
        res = app.build_engine(FixedController(64), seed=10).run(max_steps=5000)
        assert res.total_aborted > 0  # contention on shared components
        assert app.total_weight == pytest.approx(kruskal_weight(g), abs=1e-9)
