"""Tests for repro.apps.maxflow — preflow-push under speculation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.maxflow import (
    FlowNetwork,
    PreflowPush,
    random_flow_network,
    reference_max_flow,
)
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError


class TestFlowNetwork:
    def test_add_edge_accumulates(self):
        net = FlowNetwork(3, 0, 2)
        net.add_edge(0, 1, 5)
        net.add_edge(0, 1, 3)
        assert net.capacity[0][1] == 8

    def test_reverse_arc_created(self):
        net = FlowNetwork(3, 0, 2)
        net.add_edge(0, 1, 5)
        assert net.capacity[1][0] == 0

    def test_validation(self):
        with pytest.raises(ApplicationError):
            FlowNetwork(1, 0, 0)
        with pytest.raises(ApplicationError):
            FlowNetwork(3, 0, 0)
        net = FlowNetwork(3, 0, 2)
        with pytest.raises(ApplicationError):
            net.add_edge(1, 1, 2)
        with pytest.raises(ApplicationError):
            net.add_edge(0, 1, -1)
        with pytest.raises(ApplicationError):
            net.add_edge(0, 9, 1)


class TestHandComputedFlows:
    def test_single_path(self):
        net = FlowNetwork(3, 0, 2)
        net.add_edge(0, 1, 7)
        net.add_edge(1, 2, 4)
        app = PreflowPush(net)
        app.build_engine(FixedController(2), seed=0).run(max_steps=10000)
        assert app.flow_value == 4
        assert app.check_conservation()

    def test_parallel_paths(self):
        net = FlowNetwork(4, 0, 3)
        net.add_edge(0, 1, 3)
        net.add_edge(1, 3, 3)
        net.add_edge(0, 2, 5)
        net.add_edge(2, 3, 2)
        app = PreflowPush(net)
        app.build_engine(FixedController(4), seed=1).run(max_steps=10000)
        assert app.flow_value == 5

    def test_classic_diamond(self):
        # cross edge enables rerouting: max flow = 2000 + min cross use
        net = FlowNetwork(4, 0, 3)
        net.add_edge(0, 1, 10)
        net.add_edge(0, 2, 10)
        net.add_edge(1, 3, 10)
        net.add_edge(2, 3, 10)
        net.add_edge(1, 2, 1)
        app = PreflowPush(net)
        app.build_engine(FixedController(3), seed=2).run(max_steps=10000)
        assert app.flow_value == 20

    def test_zero_flow_when_disconnected(self):
        net = FlowNetwork(4, 0, 3)
        net.add_edge(0, 1, 5)
        net.add_edge(2, 3, 5)
        app = PreflowPush(net)
        app.build_engine(FixedController(2), seed=3).run(max_steps=10000)
        assert app.flow_value == 0
        assert app.check_conservation()


class TestAgainstScipyOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_networks(self, seed):
        net = random_flow_network(60, avg_out_degree=3.0, seed=seed)
        ref = reference_max_flow(net)
        app = PreflowPush(net)
        app.build_engine(HybridController(0.25), seed=seed + 10).run(max_steps=10**6)
        assert app.flow_value == ref
        assert app.check_conservation()
        assert len(app.workset) == 0

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 500), st.integers(1, 24))
    def test_property_any_seed_any_m(self, seed, m):
        net = random_flow_network(24, avg_out_degree=2.5, seed=seed)
        ref = reference_max_flow(net)
        app = PreflowPush(net)
        app.build_engine(FixedController(m), seed=seed).run(max_steps=10**6)
        assert app.flow_value == ref
        assert app.check_conservation()

    def test_no_frozen_nodes_on_valid_runs(self):
        net = random_flow_network(50, seed=9)
        app = PreflowPush(net)
        app.build_engine(FixedController(8), seed=10).run(max_steps=10**6)
        assert not app._frozen


class TestParallelStructure:
    def test_conflicts_under_wide_allocation(self):
        net = random_flow_network(120, avg_out_degree=4.0, seed=4)
        app = PreflowPush(net)
        res = app.build_engine(FixedController(32), seed=5).run(max_steps=10**6)
        assert res.total_aborted > 0
        assert app.flow_value == reference_max_flow(net)
