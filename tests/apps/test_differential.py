"""Differential suite: legacy app wiring vs the unified registry path.

Every application used to be driven by hand — build the input, build the
workload, call ``build_engine`` with an explicitly constructed
controller.  That spelling is now a deprecation shim over the same
pipeline the registry uses, and this suite proves the collapse lossless:
for each app, the legacy spelling and ``run(RunConfig(workload=...))``
must produce **byte-identical** observability traces, not merely equal
summary statistics.
"""

import warnings

import pytest

from repro import RunConfig
from repro.api import run
from repro.apps import build_app_input, workload_from_input
from repro.obs import TraceRecorder
from repro.registry import CONTROLLERS
from repro.utils.rng import derive_seed

SEED = 23

#: small-but-nontrivial problem sizes so the full matrix stays fast
SCALES = {
    "boruvka": 60,
    "clustering": 50,
    "coloring": 60,
    "components": 60,
    "delaunay": 16,
    "des": 6,
    "maxflow": 30,
    "sp": 12,
}


def _legacy_trace(name, cfg):
    """The pre-registry spelling, exactly as historical callers wrote it."""
    seed_in = derive_seed(SEED, "workload", name)
    source = build_app_input(name, SCALES[name], seed_in)
    app = workload_from_input(name, source, seed=seed_in)
    controller = CONTROLLERS.create(cfg.controller, cfg)
    rec = TraceRecorder()
    with pytest.warns(DeprecationWarning, match="make_engine"):
        engine = app.build_engine(
            controller, seed=SEED, recorder=rec, engine=cfg.engine
        )
    engine.run()
    return rec.to_jsonl()


def _registry_trace(name, cfg):
    rec = TraceRecorder()
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        run(cfg, recorder=rec)
    return rec.to_jsonl()


@pytest.mark.parametrize("name", sorted(SCALES))
def test_legacy_and_registry_paths_are_byte_identical(name):
    cfg = RunConfig(workload=f"{name}:{SCALES[name]}", seed=SEED)
    assert _legacy_trace(name, cfg) == _registry_trace(name, cfg)
