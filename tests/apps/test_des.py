"""Tests for repro.apps.des — parallel discrete-event simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.des import DiscreteEventSimulation, QueueingNetwork, sequential_history
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError


@pytest.fixture(scope="module")
def network():
    return QueueingNetwork(20, avg_degree=3.0, seed=1)


@pytest.fixture(scope="module")
def reference(network):
    return sequential_history(network, num_jobs=25, end_time=30.0, seed=2)


class TestQueueingNetwork:
    def test_strongly_connected_ring_backbone(self, network):
        for s in range(network.num_stations):
            assert (s + 1) % network.num_stations in network.neighbors[s]

    def test_routing_deterministic(self, network):
        assert network.route(3, 0.42) == network.route(3, 0.42)

    def test_routing_covers_neighbors(self, network):
        targets = {network.route(0, d / 100.0) for d in range(100)}
        assert targets == set(network.neighbors[0])

    def test_validation(self):
        with pytest.raises(ApplicationError):
            QueueingNetwork(1)


class TestAgainstSequentialOracle:
    @pytest.mark.parametrize("m", [1, 4, 16, 64])
    def test_history_matches_sequential_exactly(self, network, reference, m):
        """The headline PDES invariant: any allocation yields the identical
        committed event history."""
        sim = DiscreteEventSimulation(network, num_jobs=25, end_time=30.0, seed=2)
        sim.build_engine(FixedController(m), seed=3).run(max_steps=10**6)
        assert sim.history == reference

    def test_history_chronological(self, network):
        sim = DiscreteEventSimulation(network, num_jobs=25, end_time=30.0, seed=2)
        sim.build_engine(FixedController(16), seed=4).run(max_steps=10**6)
        assert sim.check_history_ordered()

    def test_hybrid_controller_matches_too(self, network, reference):
        sim = DiscreteEventSimulation(network, num_jobs=25, end_time=30.0, seed=2)
        sim.build_engine(HybridController(0.3), seed=5).run(max_steps=10**6)
        assert sim.history == reference

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 50), st.integers(1, 32))
    def test_property_any_seed_any_m(self, seed, m):
        net = QueueingNetwork(8, avg_degree=2.0, seed=seed)
        ref = sequential_history(net, num_jobs=6, end_time=10.0, seed=seed)
        sim = DiscreteEventSimulation(net, num_jobs=6, end_time=10.0, seed=seed)
        sim.build_engine(FixedController(m), seed=seed).run(max_steps=10**6)
        assert sim.history == ref


class TestParallelismStructure:
    def test_speculation_shortens_makespan(self, network):
        runs = {}
        for m in (1, 8):
            sim = DiscreteEventSimulation(network, num_jobs=25, end_time=30.0, seed=2)
            res = sim.build_engine(FixedController(m), seed=6).run(max_steps=10**6)
            runs[m] = len(res)
        assert runs[8] < runs[1]

    def test_overspeculation_wastes_without_speedup(self, network):
        """Ordered parallelism saturates: m=64 no faster than m=8, far
        more aborts — §5's 'ordered is hard' in one assertion."""
        outcomes = {}
        for m in (8, 64):
            sim = DiscreteEventSimulation(network, num_jobs=25, end_time=30.0, seed=2)
            eng = sim.build_engine(FixedController(m), seed=7)
            res = eng.run(max_steps=10**6)
            outcomes[m] = (len(res), eng.conflict_aborts_total + eng.order_aborts_total)
        steps8, aborts8 = outcomes[8]
        steps64, aborts64 = outcomes[64]
        assert steps64 >= 0.8 * steps8  # no real speedup left
        assert aborts64 > 2 * aborts8  # but much more wasted work

    def test_order_aborts_happen(self, network):
        sim = DiscreteEventSimulation(network, num_jobs=25, end_time=30.0, seed=2)
        eng = sim.build_engine(FixedController(16), seed=8)
        eng.run(max_steps=10**6)
        assert eng.order_aborts_total > 0
        assert eng.conflict_aborts_total > 0


class TestValidation:
    def test_bad_parameters(self, network):
        with pytest.raises(ApplicationError):
            DiscreteEventSimulation(network, num_jobs=0, end_time=10.0)
        with pytest.raises(ApplicationError):
            DiscreteEventSimulation(network, num_jobs=5, end_time=0.0)

    def test_event_count_grows_with_end_time(self, network):
        short = sequential_history(network, num_jobs=10, end_time=5.0, seed=3)
        long = sequential_history(network, num_jobs=10, end_time=20.0, seed=3)
        assert len(long) > len(short)

    def test_short_history_is_prefix_of_long(self, network):
        """Chains are deterministic: extending the horizon only appends."""
        short = sequential_history(network, num_jobs=10, end_time=5.0, seed=3)
        long = sequential_history(network, num_jobs=10, end_time=20.0, seed=3)
        assert [e for e in long if e.time <= 5.0] == short
