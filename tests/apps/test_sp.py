"""Tests for repro.apps.sp — survey propagation."""

import numpy as np
import pytest

from repro.apps.sp import SatInstance, SurveyPropagation, random_ksat
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError


class TestSatInstance:
    def test_valid_instance(self):
        inst = SatInstance(3, [(1, -2, 3), (-1, 2)])
        assert inst.num_vars == 3
        assert len(inst.clauses) == 2

    def test_empty_clause_rejected(self):
        with pytest.raises(ApplicationError):
            SatInstance(2, [()])

    def test_zero_literal_rejected(self):
        with pytest.raises(ApplicationError):
            SatInstance(2, [(0,)])

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ApplicationError):
            SatInstance(2, [(3,)])

    def test_repeated_variable_rejected(self):
        with pytest.raises(ApplicationError):
            SatInstance(2, [(1, -1)])


class TestRandomKsat:
    def test_shape(self):
        inst = random_ksat(20, 60, k=3, seed=0)
        assert inst.num_vars == 20
        assert len(inst.clauses) == 60
        assert all(len(c) == 3 for c in inst.clauses)

    def test_k_validation(self):
        with pytest.raises(ApplicationError):
            random_ksat(3, 5, k=4)


class TestSurveyPropagation:
    def test_converges_to_fixed_point(self):
        inst = random_ksat(60, 150, k=3, seed=1)
        sp = SurveyPropagation(inst, tol=1e-3, seed=2)
        sp.build_engine(HybridController(0.25), seed=3).run(max_steps=4000)
        assert sp.max_residual() < 0.05  # near fixed point

    def test_underconstrained_surveys_vanish(self):
        """alpha = M/N well below the SAT threshold: paramagnetic fixed
        point eta = 0 everywhere."""
        inst = random_ksat(80, 80, k=3, seed=4)  # alpha = 1 << 4.27
        sp = SurveyPropagation(inst, tol=1e-4, seed=5)
        sp.build_engine(FixedController(16), seed=6).run(max_steps=8000)
        values = np.array(list(sp.eta.values()))
        assert values.max() < 0.05

    def test_single_clause_eta_zero(self):
        # one clause: no other clauses constrain its variables -> eta = 0
        inst = SatInstance(3, [(1, 2, 3)])
        sp = SurveyPropagation(inst, tol=1e-6, init=0.5, seed=7)
        sp.build_engine(FixedController(1), seed=8).run(max_steps=50)
        assert all(v == pytest.approx(0.0, abs=1e-9) for v in sp.eta.values())

    def test_contradictory_pair_polarises(self):
        """x forced true by one unit-ish structure: (x∨y) with (x∨¬y)
        leaves x biased toward true after convergence."""
        inst = SatInstance(2, [(1, 2), (1, -2)])
        sp = SurveyPropagation(inst, tol=1e-6, init=0.9, seed=9)
        sp.build_engine(FixedController(2), seed=10).run(max_steps=400)
        biases = sp.biases()
        # bias convention: positive = prefer true
        assert biases[0] >= -1e-9

    def test_surveys_stay_in_unit_interval(self):
        inst = random_ksat(40, 160, k=3, seed=11)
        sp = SurveyPropagation(inst, tol=1e-3, damping=0.2, seed=12)
        sp.build_engine(FixedController(8), seed=13).run(max_steps=1500)
        values = np.array(list(sp.eta.values()))
        assert values.min() >= 0.0 and values.max() <= 1.0

    def test_max_updates_cap(self):
        inst = random_ksat(30, 120, k=3, seed=14)
        sp = SurveyPropagation(inst, max_updates=10, seed=15)
        sp.build_engine(FixedController(4), seed=16).run(max_steps=1000)
        assert sp.updates_done <= 10

    def test_parameter_validation(self):
        inst = random_ksat(5, 5, seed=0)
        with pytest.raises(ApplicationError):
            SurveyPropagation(inst, tol=0.0)
        with pytest.raises(ApplicationError):
            SurveyPropagation(inst, damping=1.0)
        with pytest.raises(ApplicationError):
            SurveyPropagation(inst, init=1.5)

    def test_biases_shape(self):
        inst = random_ksat(25, 50, seed=17)
        sp = SurveyPropagation(inst, seed=18)
        assert sp.biases().shape == (25,)
