"""Tests for repro.apps.delaunay.geometry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.delaunay.geometry import (
    circumcenter,
    circumradius,
    in_circle,
    min_angle_deg,
    orient2d,
    point_in_triangle,
    triangle_angles,
)
from repro.errors import GeometryError

coords = st.floats(-100, 100, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


class TestOrient2d:
    def test_ccw_positive(self):
        assert orient2d((0, 0), (1, 0), (0, 1)) > 0

    def test_cw_negative(self):
        assert orient2d((0, 0), (0, 1), (1, 0)) < 0

    def test_collinear_zero(self):
        assert orient2d((0, 0), (1, 1), (2, 2)) == 0.0

    def test_twice_area(self):
        assert orient2d((0, 0), (2, 0), (0, 2)) == pytest.approx(4.0)

    @given(points, points, points)
    def test_antisymmetry(self, a, b, c):
        assert orient2d(a, b, c) == pytest.approx(-orient2d(a, c, b), abs=1e-6)


class TestInCircle:
    def test_center_inside_unit_circle(self):
        a, b, c = (1, 0), (0, 1), (-1, 0)  # ccw on the unit circle
        assert in_circle(a, b, c, (0.0, 0.0))

    def test_far_point_outside(self):
        a, b, c = (1, 0), (0, 1), (-1, 0)
        assert not in_circle(a, b, c, (10.0, 10.0))

    def test_on_circle_not_inside(self):
        a, b, c = (1, 0), (0, 1), (-1, 0)
        assert not in_circle(a, b, c, (0.0, -1.0))

    def test_translation_invariance(self):
        a, b, c, p = (1, 0), (0, 1), (-1, 0), (0.3, 0.2)
        shift = lambda q: (q[0] + 55.0, q[1] - 17.0)
        assert in_circle(a, b, c, p) == in_circle(shift(a), shift(b), shift(c), shift(p))

    @settings(max_examples=60)
    @given(points, points, points, points)
    def test_consistent_with_circumradius(self, a, b, c, p):
        if abs(orient2d(a, b, c)) < 1e-3:
            return  # skip near-degenerate triangles
        if orient2d(a, b, c) < 0:
            b, c = c, b
        try:
            center = circumcenter(a, b, c)
            radius = circumradius(a, b, c)
        except GeometryError:
            return
        dist = math.hypot(p[0] - center[0], p[1] - center[1])
        if abs(dist - radius) < 1e-6 * max(radius, 1.0):
            return  # too close to the boundary for float predicates
        assert in_circle(a, b, c, p) == (dist < radius)


class TestCircumcenter:
    def test_right_triangle(self):
        # circumcenter of a right triangle is the hypotenuse midpoint
        cc = circumcenter((0, 0), (2, 0), (0, 2))
        assert cc == (pytest.approx(1.0), pytest.approx(1.0))

    def test_equilateral(self):
        cc = circumcenter((0, 0), (1, 0), (0.5, math.sqrt(3) / 2))
        assert cc[0] == pytest.approx(0.5)
        assert cc[1] == pytest.approx(math.sqrt(3) / 6)

    def test_equidistant_property(self):
        a, b, c = (0.1, 0.3), (2.5, -0.2), (1.0, 1.7)
        cc = circumcenter(a, b, c)
        d = [math.hypot(p[0] - cc[0], p[1] - cc[1]) for p in (a, b, c)]
        assert d[0] == pytest.approx(d[1]) == pytest.approx(d[2])

    def test_collinear_raises(self):
        with pytest.raises(GeometryError):
            circumcenter((0, 0), (1, 1), (2, 2))


class TestAngles:
    def test_equilateral_angles(self):
        angles = triangle_angles((0, 0), (1, 0), (0.5, math.sqrt(3) / 2))
        for a in angles:
            assert a == pytest.approx(math.pi / 3)

    def test_angles_sum_to_pi(self):
        angles = triangle_angles((0, 0), (3, 0.2), (1, 2))
        assert sum(angles) == pytest.approx(math.pi)

    def test_min_angle_right_isoceles(self):
        assert min_angle_deg((0, 0), (1, 0), (0, 1)) == pytest.approx(45.0)

    def test_skinny_triangle_small_angle(self):
        assert min_angle_deg((0, 0), (1, 0), (0.5, 0.01)) < 5.0

    def test_degenerate_raises(self):
        with pytest.raises(GeometryError):
            triangle_angles((0, 0), (0, 0), (1, 1))


class TestPointInTriangle:
    def test_inside(self):
        assert point_in_triangle((0, 0), (4, 0), (0, 4), (1, 1))

    def test_outside(self):
        assert not point_in_triangle((0, 0), (4, 0), (0, 4), (3, 3))

    def test_vertex_counts_as_inside(self):
        assert point_in_triangle((0, 0), (4, 0), (0, 4), (0, 0))

    def test_edge_counts_as_inside(self):
        assert point_in_triangle((0, 0), (4, 0), (0, 4), (2, 0))
