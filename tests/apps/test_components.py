"""Tests for repro.apps.components — label propagation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.components import LabelPropagation
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError
from repro.graph.ccgraph import CCGraph
from repro.graph.generators import empty_graph, gnm_random, path_graph, union_of_cliques


class TestLabelPropagation:
    def test_single_component_single_label(self):
        g = path_graph(40)
        app = LabelPropagation(g)
        app.build_engine(HybridController(0.25), seed=0).run(max_steps=10**5)
        assert app.num_components() == 1
        assert set(app.labels.values()) == {0}

    def test_isolated_nodes_keep_labels(self):
        g = empty_graph(10)
        app = LabelPropagation(g)
        app.build_engine(FixedController(4), seed=1).run(max_steps=10**4)
        assert app.num_components() == 10
        assert app.labels == {u: u for u in range(10)}

    def test_cliques_become_components(self):
        g = union_of_cliques(7, 5)
        app = LabelPropagation(g)
        app.build_engine(FixedController(8), seed=2).run(max_steps=10**5)
        assert app.num_components() == 7
        assert app.check_against_networkx()

    def test_random_graph_matches_networkx(self):
        g = gnm_random(300, 1.5, seed=3)  # sparse -> many components
        app = LabelPropagation(g)
        app.build_engine(HybridController(0.25), seed=4).run(max_steps=10**6)
        assert app.check_against_networkx()

    @settings(max_examples=12, deadline=None)
    @given(st.integers(1, 60), st.floats(0, 4), st.integers(0, 300), st.integers(1, 24))
    def test_property_any_graph_any_m(self, n, d, seed, m):
        g = gnm_random(n, min(d, n - 1), seed=seed)
        app = LabelPropagation(g)
        app.build_engine(FixedController(m), seed=seed).run(max_steps=10**6)
        assert app.check_against_networkx()

    def test_empty_graph_rejected(self):
        with pytest.raises(ApplicationError):
            LabelPropagation(CCGraph())

    def test_update_counting(self):
        g = path_graph(5)
        app = LabelPropagation(g)
        app.build_engine(FixedController(2), seed=5).run(max_steps=10**4)
        # nodes 1..4 must each improve at least once down to label 0
        assert app.updates >= 4
