"""Tests for repro.apps.delaunay.refinement."""

import pytest

from repro.apps.delaunay.geometry import min_angle_deg
from repro.apps.delaunay.refinement import (
    RefinementWorkload,
    mesh_quality,
    random_input_mesh,
)
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError


@pytest.fixture
def refined_run():
    mesh = random_input_mesh(120, seed=1)
    wl = RefinementWorkload(mesh, min_angle=25.0, min_edge=0.03)
    engine = wl.build_engine(HybridController(0.25), seed=2)
    result = engine.run(max_steps=4000)
    return mesh, wl, result


class TestSetup:
    def test_initial_workset_is_bad_triangles(self):
        mesh = random_input_mesh(60, seed=0)
        wl = RefinementWorkload(mesh, min_angle=25.0, min_edge=0.03)
        assert len(wl.workset) == sum(1 for t in mesh.triangle_ids() if wl.is_bad(t))

    def test_parameter_validation(self):
        mesh = random_input_mesh(10, seed=0)
        with pytest.raises(ApplicationError):
            RefinementWorkload(mesh, min_angle=0.0)
        with pytest.raises(ApplicationError):
            RefinementWorkload(mesh, min_angle=70.0)
        with pytest.raises(ApplicationError):
            RefinementWorkload(mesh, min_edge=0.0)

    def test_input_mesh_validation(self):
        with pytest.raises(ApplicationError):
            random_input_mesh(2)


class TestRefinementRun(object):
    def test_terminates_and_refines(self, refined_run):
        mesh, wl, result = refined_run
        assert len(wl.workset) == 0  # drained, not step-capped
        assert wl.check_refined()
        assert wl.remaining_bad() == 0

    def test_mesh_stays_consistent(self, refined_run):
        mesh, _, _ = refined_run
        assert mesh.check_consistency()

    def test_mesh_stays_delaunay(self):
        # smaller instance so the O(V·T) check is cheap
        mesh = random_input_mesh(40, seed=3)
        wl = RefinementWorkload(mesh, min_angle=22.0, min_edge=0.05)
        wl.build_engine(FixedController(4), seed=4).run(max_steps=2000)
        assert mesh.check_delaunay()

    def test_quality_improves(self, refined_run):
        mesh, wl, _ = refined_run
        fresh = random_input_mesh(120, seed=1)
        assert mesh_quality(mesh)["mean_min_angle"] > mesh_quality(fresh)["mean_min_angle"]

    def test_accounting(self, refined_run):
        _, wl, result = refined_run
        # every committed task either inserted, was stale, or gave up
        assert wl.insertions + wl.stale_commits + len(wl.given_up) == result.total_committed

    def test_domain_restriction_bounds_insertions(self, refined_run):
        mesh, wl, _ = refined_run
        xmin, ymin, xmax, ymax = wl.domain
        for i in range(mesh.num_vertices):
            if mesh.is_ghost_vertex(i):
                continue
            x, y = mesh.vertex(i)
            assert xmin - 1e-9 <= x <= xmax + 1e-9
            assert ymin - 1e-9 <= y <= ymax + 1e-9

    def test_remaining_bad_only_guarded(self, refined_run):
        """Any leftover skinny triangle must be sub-floor, given-up or off-domain."""
        mesh, wl, _ = refined_run
        for tid in mesh.triangle_ids():
            if min_angle_deg(*mesh.triangle_points(tid)) < wl.min_angle:
                guarded = (
                    mesh.shortest_edge_of(tid) < wl.min_edge
                    or tid in wl.given_up
                    or not all(wl._in_domain(p) for p in mesh.triangle_points(tid))
                )
                assert guarded


class TestQualityMetric:
    def test_mesh_quality_fields(self):
        q = mesh_quality(random_input_mesh(30, seed=5))
        assert q["triangles"] > 0
        assert 0 <= q["min_angle"] <= q["mean_min_angle"] <= 60.0

    def test_empty_mesh_quality(self):
        from repro.apps.delaunay.triangulation import Triangulation

        q = mesh_quality(Triangulation((0, 0, 1, 1)))
        assert q["triangles"] == 0.0
