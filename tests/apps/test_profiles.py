"""Tests for repro.apps.profiles — scheduled replay workloads."""

import numpy as np
import pytest

from repro.apps.profiles import (
    Phase,
    ScheduledReplayWorkload,
    delaunay_burst_profile,
    graph_for_parallelism,
    ramp_profile,
    spike_profile,
    step_profile,
)
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError
from repro.model.seating import expected_mis


class TestGraphForParallelism:
    def test_exact_available_parallelism(self):
        g = graph_for_parallelism(7, 70)
        mis = expected_mis(g, reps=50, seed=0)
        assert mis.mean == pytest.approx(7.0, abs=1e-9)

    def test_remainder_distribution(self):
        g = graph_for_parallelism(3, 10)  # sizes 4, 3, 3
        assert g.num_nodes == 10
        degs = sorted(g.degree(u) for u in g)
        assert degs[0] == 2 and degs[-1] == 3

    def test_validation(self):
        with pytest.raises(ApplicationError):
            graph_for_parallelism(0, 10)
        with pytest.raises(ApplicationError):
            graph_for_parallelism(10, 5)


class TestProfileBuilders:
    def test_step_profile_shape(self):
        phases = step_profile(2, 50, 200, steps_per_phase=30)
        assert len(phases) == 3
        assert [p.duration for p in phases] == [30, 30, 30]

    def test_ramp_is_increasing(self):
        phases = ramp_profile(2, 100, 400, stages=5)
        sizes = [expected_mis(p.graph, reps=20, seed=0).mean for p in phases]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_ramp_validation(self):
        with pytest.raises(ApplicationError):
            ramp_profile(2, 100, 400, stages=1)

    def test_spike_profile_shape(self):
        phases = spike_profile(2, 80, 200, base_steps=10, peak_steps=4)
        assert [p.label for p in phases] == ["base", "spike", "base"]

    def test_delaunay_burst_reaches_peak(self):
        phases = delaunay_burst_profile(peak=200, total_tasks=800, rise_steps=30)
        peak_mis = expected_mis(phases[-1].graph, reps=20, seed=0).mean
        assert peak_mis == pytest.approx(200, abs=1e-9)

    def test_phase_validation(self):
        from repro.graph.generators import empty_graph

        with pytest.raises(ApplicationError):
            Phase(0, empty_graph(3))
        with pytest.raises(ApplicationError):
            Phase(5, empty_graph(0))


class TestScheduledReplay:
    def test_transitions_at_phase_boundaries(self):
        phases = step_profile(2, 40, 100, steps_per_phase=20)
        wl = ScheduledReplayWorkload(phases)
        eng = wl.build_engine(FixedController(4), seed=0)
        eng.run(max_steps=wl.total_steps())
        assert wl.transitions == [20, 40]

    def test_workset_refilled_on_switch(self):
        phases = [
            Phase(3, graph_for_parallelism(2, 10)),
            Phase(3, graph_for_parallelism(5, 25)),
        ]
        wl = ScheduledReplayWorkload(phases)
        eng = wl.build_engine(FixedController(2), seed=1)
        eng.run(max_steps=6)
        assert len(wl.workset) == 25  # second phase graph size

    def test_empty_schedule_rejected(self):
        with pytest.raises(ApplicationError):
            ScheduledReplayWorkload([])

    def test_total_steps(self):
        phases = step_profile(2, 4, 20, steps_per_phase=7)
        assert ScheduledReplayWorkload(phases).total_steps() == 21

    def test_conflict_ratio_tracks_phase(self):
        """Fixed m=20: serial phase shows heavy conflicts, parallel phase none."""
        phases = [
            Phase(30, graph_for_parallelism(1, 100), "serial"),
            Phase(30, graph_for_parallelism(100, 100), "parallel"),
        ]
        wl = ScheduledReplayWorkload(phases)
        eng = wl.build_engine(FixedController(20), seed=2)
        res = eng.run(max_steps=60)
        rs = res.r_trace
        assert rs[:30].mean() > 0.9  # one big clique
        assert rs[30:].mean() == 0.0  # isolated nodes

    def test_controller_retracks_after_switch(self):
        phases = step_profile(4, 150, 600, steps_per_phase=50)
        wl = ScheduledReplayWorkload(phases)
        eng = wl.build_engine(HybridController(0.2), seed=3)
        res = eng.run(max_steps=wl.total_steps())
        ms = res.m_trace
        # allocation grows after the low->high switch and shrinks back
        assert ms[45:50].mean() < ms[95:100].mean()
        assert ms[145:150].mean() < ms[95:100].mean()

    def test_last_phase_holds(self):
        phases = [Phase(2, graph_for_parallelism(2, 10))]
        wl = ScheduledReplayWorkload(phases)
        eng = wl.build_engine(FixedController(2), seed=4)
        res = eng.run(max_steps=10)  # beyond the schedule
        assert len(res) == 10
