"""Tests for repro.apps.clustering."""

import math

import numpy as np
import pytest

from repro.apps.clustering import AgglomerativeClustering, random_points
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ApplicationError


class TestRandomPoints:
    def test_shape_and_range(self):
        pts = random_points(200, clusters=5, seed=0)
        assert pts.shape == (200, 2)
        assert pts.min() >= 0.0 and pts.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ApplicationError):
            random_points(0)
        with pytest.raises(ApplicationError):
            random_points(10, clusters=0)


class TestClusteringRun:
    @pytest.fixture
    def finished(self):
        pts = random_points(300, clusters=6, spread=0.02, seed=1)
        app = AgglomerativeClustering(pts, merge_threshold=0.05)
        res = app.build_engine(HybridController(0.25), seed=2).run(max_steps=5000)
        return pts, app, res

    def test_terminates(self, finished):
        _, app, _ = finished
        assert len(app.workset) == 0

    def test_mass_conserved(self, finished):
        pts, app, _ = finished
        assert app.total_mass() == 300

    def test_cluster_count_reduced(self, finished):
        _, app, _ = finished
        assert app.num_clusters() < 300

    def test_labels_partition_points(self, finished):
        _, app, _ = finished
        labels = app.labels()
        assert labels.shape == (300,)
        assert set(labels.tolist()) == set(range(app.num_clusters()))

    def test_dendrogram_merges_under_threshold(self, finished):
        _, app, _ = finished
        for a, b, parent, dist in app.dendrogram:
            assert dist <= app.merge_threshold + 1e-12
            assert parent > max(a, b)  # parents created after children

    def test_final_clusters_mutually_distant(self, finished):
        """No two surviving centroids are within the merge threshold."""
        _, app, _ = finished
        cents = [c.centroid for c in app._clusters.values()]
        for i in range(len(cents)):
            for j in range(i + 1, len(cents)):
                d = math.hypot(cents[i][0] - cents[j][0], cents[i][1] - cents[j][1])
                assert d > app.merge_threshold

    def test_centroid_is_member_mean(self, finished):
        pts, app, _ = finished
        for c in app._clusters.values():
            mean = pts[c.members].mean(axis=0)
            assert c.centroid[0] == pytest.approx(mean[0], abs=1e-9)
            assert c.centroid[1] == pytest.approx(mean[1], abs=1e-9)


class TestEdgeCases:
    def test_single_point(self):
        app = AgglomerativeClustering(np.array([[0.5, 0.5]]), merge_threshold=0.1)
        app.build_engine(FixedController(1), seed=0).run(max_steps=10)
        assert app.num_clusters() == 1

    def test_two_distant_points_stay_apart(self):
        app = AgglomerativeClustering(
            np.array([[0.0, 0.0], [1.0, 1.0]]), merge_threshold=0.1
        )
        app.build_engine(FixedController(2), seed=0).run(max_steps=10)
        assert app.num_clusters() == 2

    def test_two_close_points_merge(self):
        app = AgglomerativeClustering(
            np.array([[0.5, 0.5], [0.52, 0.5]]), merge_threshold=0.1
        )
        app.build_engine(FixedController(2), seed=0).run(max_steps=10)
        assert app.num_clusters() == 1
        assert len(app.dendrogram) == 1

    def test_validation(self):
        with pytest.raises(ApplicationError):
            AgglomerativeClustering(np.zeros((3, 3)))
        with pytest.raises(ApplicationError):
            AgglomerativeClustering(np.zeros((3, 2)), merge_threshold=0.0)
