"""Tests for repro.apps.delaunay.triangulation — Bowyer–Watson."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.delaunay.triangulation import Triangulation
from repro.errors import GeometryError


class TestConstruction:
    def test_empty_has_one_ghost_triangle(self):
        tri = Triangulation((0, 0, 1, 1))
        assert len(tri.triangle_ids(include_ghost=True)) == 1
        assert tri.triangle_ids() == []

    def test_degenerate_bbox_raises(self):
        with pytest.raises(GeometryError):
            Triangulation((0, 0, 0, 1))

    def test_single_insert_creates_three_triangles(self):
        tri = Triangulation((0, 0, 1, 1))
        new = tri.insert((0.5, 0.5))
        assert len(new) == 3
        assert all(tri.is_ghost_triangle(t) for t in new)

    def test_from_points_requires_points(self):
        with pytest.raises(GeometryError):
            Triangulation.from_points([])


class TestStructuralInvariants:
    def test_euler_formula_real_mesh(self):
        """With the 3 ghost vertices, V − E + F = 2 (planar triangulation)."""
        rng = np.random.default_rng(0)
        tri = Triangulation.from_points(rng.random((80, 2)).tolist())
        v = tri.num_vertices
        faces = len(tri.triangle_ids(include_ghost=True)) + 1  # outer face
        edges = len(tri._edge_tris)
        assert v - edges + faces == 2

    def test_consistency_after_random_inserts(self):
        rng = np.random.default_rng(1)
        tri = Triangulation.from_points(rng.random((60, 2)).tolist())
        assert tri.check_consistency()

    def test_delaunay_property_random(self):
        rng = np.random.default_rng(2)
        tri = Triangulation.from_points(rng.random((60, 2)).tolist())
        assert tri.check_delaunay()

    def test_area_covers_convex_hull(self):
        # grid points: hull is the square, real triangles tile ~the square
        pts = [(x / 5.0 + 0.001 * ((x * 7 + y) % 3), y / 5.0) for x in range(6) for y in range(6)]
        tri = Triangulation.from_points(pts)
        assert tri.total_area() == pytest.approx(1.0, abs=0.05)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(3, 40), st.integers(0, 10**6))
    def test_invariants_property_based(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2)) + rng.normal(scale=1e-9, size=(n, 2))
        tri = Triangulation.from_points(pts.tolist())
        assert tri.check_consistency()
        assert tri.num_vertices == n + 3
        # each internal edge has exactly 2 owners, hull edges of the ghost
        # super-triangle have 1
        owners = [len(s) for s in tri._edge_tris.values()]
        assert set(owners) <= {1, 2}


class TestLocate:
    def test_locates_containing_triangle(self):
        rng = np.random.default_rng(3)
        tri = Triangulation.from_points(rng.random((40, 2)).tolist())
        from repro.apps.delaunay.geometry import point_in_triangle

        for _ in range(25):
            p = tuple(rng.random(2))
            tid = tri.locate(p)
            pa, pb, pc = tri.triangle_points(tid)
            assert point_in_triangle(pa, pb, pc, p)

    def test_outside_hull_raises(self):
        tri = Triangulation((0, 0, 1, 1))
        with pytest.raises(GeometryError):
            tri.locate((1e9, 1e9))

    def test_hint_accelerates_but_agrees(self):
        rng = np.random.default_rng(4)
        tri = Triangulation.from_points(rng.random((40, 2)).tolist())
        p = (0.5, 0.5)
        t_no_hint = tri.locate(p)
        some_tri = tri.triangle_ids()[0]
        t_hint = tri.locate(p, hint=some_tri)
        # both must contain p (they may be the same or share an edge if p on edge)
        from repro.apps.delaunay.geometry import point_in_triangle

        for t in (t_no_hint, t_hint):
            assert point_in_triangle(*tri.triangle_points(t), p)


class TestCavity:
    def test_cavity_contains_locating_triangle(self):
        rng = np.random.default_rng(5)
        tri = Triangulation.from_points(rng.random((30, 2)).tolist())
        p = (0.4, 0.6)
        cav = tri.cavity(p)
        assert tri.locate(p) in cav

    def test_cavity_triangles_circumcircle_contains_point(self):
        from repro.apps.delaunay.geometry import in_circle

        rng = np.random.default_rng(6)
        tri = Triangulation.from_points(rng.random((30, 2)).tolist())
        p = (0.5, 0.5)
        for tid in tri.cavity(p):
            assert in_circle(*tri.triangle_points(tid), p)

    def test_cavity_is_read_only(self):
        rng = np.random.default_rng(7)
        tri = Triangulation.from_points(rng.random((20, 2)).tolist())
        before = sorted(tri.triangle_ids(include_ghost=True))
        tri.cavity((0.5, 0.5))
        assert sorted(tri.triangle_ids(include_ghost=True)) == before

    def test_insert_with_stale_cavity_raises(self):
        rng = np.random.default_rng(8)
        tri = Triangulation.from_points(rng.random((20, 2)).tolist())
        cav = tri.cavity((0.5, 0.5))
        tri.insert((0.5, 0.5))  # invalidates cav
        with pytest.raises(GeometryError):
            tri.insert_with_cavity((0.51, 0.51), cav)


class TestSvgRendering:
    def test_renders_valid_svg(self, tmp_path):
        import xml.etree.ElementTree as ET

        rng = np.random.default_rng(10)
        tri = Triangulation.from_points(rng.random((30, 2)).tolist())
        out = tmp_path / "mesh.svg"
        tri.to_svg(out)
        root = ET.parse(out).getroot()
        polys = root.findall(".//{http://www.w3.org/2000/svg}polygon")
        assert len(polys) == len(tri.triangle_ids())

    def test_highlight_fills_triangles(self, tmp_path):
        rng = np.random.default_rng(11)
        tri = Triangulation.from_points(rng.random((20, 2)).tolist())
        bad = set(tri.triangle_ids()[:3])
        out = tmp_path / "mesh.svg"
        tri.to_svg(out, highlight=bad)
        text = out.read_text()
        assert text.count('fill="#D55E00"') == 3

    def test_empty_mesh_raises(self, tmp_path):
        tri = Triangulation((0, 0, 1, 1))
        with pytest.raises(GeometryError):
            tri.to_svg(tmp_path / "x.svg")


class TestDuplicateRejection:
    def test_exact_duplicate_rejected(self):
        tri = Triangulation((0, 0, 1, 1))
        tri.insert((0.5, 0.5))
        with pytest.raises(GeometryError):
            tri.insert((0.5, 0.5))

    def test_triangulation_unchanged_after_rejection(self):
        tri = Triangulation((0, 0, 1, 1))
        tri.insert((0.5, 0.5))
        before = sorted(tri.triangle_ids(include_ghost=True))
        with pytest.raises(GeometryError):
            tri.insert((0.5, 0.5))
        assert sorted(tri.triangle_ids(include_ghost=True)) == before
        assert tri.check_consistency()

    def test_nearby_but_distinct_accepted(self):
        tri = Triangulation((0, 0, 1, 1))
        tri.insert((0.5, 0.5))
        tri.insert((0.5 + 1e-6, 0.5))
        assert tri.check_consistency()


class TestQueries:
    def test_dead_triangle_raises(self):
        tri = Triangulation((0, 0, 1, 1))
        tri.insert((0.5, 0.5))
        with pytest.raises(GeometryError):
            tri.triangle_vertices(0)  # the original ghost triangle is gone

    def test_neighbors_share_edge(self):
        rng = np.random.default_rng(9)
        tri = Triangulation.from_points(rng.random((25, 2)).tolist())
        tid = tri.triangle_ids()[0]
        verts = set(tri.triangle_vertices(tid))
        for nb in tri.neighbors(tid):
            shared = verts & set(tri.triangle_vertices(nb))
            assert len(shared) == 2

    def test_repr(self):
        tri = Triangulation((0, 0, 1, 1))
        assert "vertices=3" in repr(tri)
