"""Tests for repro.apps.coloring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.coloring import GreedyColoring, independent_set_via_coloring
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    gnm_random,
    grid_graph,
)


class TestColoringCorrectness:
    def test_proper_on_random_graph(self):
        g = gnm_random(300, 8, seed=0)
        app = GreedyColoring(g)
        app.build_engine(HybridController(0.25), seed=1).run(max_steps=5000)
        assert app.is_proper()
        assert app.check_brooks_bound()

    def test_complete_graph_needs_n_colors(self):
        g = complete_graph(8)
        app = GreedyColoring(g)
        app.build_engine(FixedController(8), seed=2).run(max_steps=100)
        assert app.is_proper()
        assert app.num_colors() == 8

    def test_empty_graph_one_color(self):
        g = empty_graph(20)
        app = GreedyColoring(g)
        app.build_engine(FixedController(20), seed=3).run()
        assert app.num_colors() == 1

    def test_grid_two_colorable_at_most_three_used(self):
        # greedy on bipartite graphs can exceed 2 but never Δ+1=5; typical ≤ 3
        g = grid_graph(8, 8)
        app = GreedyColoring(g)
        app.build_engine(FixedController(10), seed=4).run(max_steps=500)
        assert app.is_proper()
        assert app.num_colors() <= 4

    def test_every_node_colored_exactly_once(self):
        g = cycle_graph(31)
        app = GreedyColoring(g)
        res = app.build_engine(FixedController(7), seed=5).run(max_steps=500)
        assert set(app.colors) == set(range(31))
        assert res.total_committed == 31 + app.recolor_attempts

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 60), st.floats(0, 6), st.integers(0, 100), st.integers(1, 40))
    def test_always_proper_property(self, n, d, seed, m):
        g = gnm_random(n, min(d, n - 1), seed=seed)
        app = GreedyColoring(g)
        app.build_engine(FixedController(m), seed=seed).run(max_steps=5000)
        assert app.is_proper()

    def test_empty_colors_before_run(self):
        app = GreedyColoring(empty_graph(3))
        assert app.num_colors() == 0
        assert not app.is_proper()  # nothing coloured yet


class TestIndependentSet:
    def test_returns_independent_set(self):
        g = gnm_random(120, 6, seed=6)
        iset = independent_set_via_coloring(g, FixedController(16), seed=7)
        for u in iset:
            assert iset.isdisjoint(g.neighbors(u))
        assert len(iset) >= 120 / (g.average_degree + 1) * 0.8  # near Turán

    def test_empty_graph(self):
        from repro.graph.ccgraph import CCGraph

        assert independent_set_via_coloring(CCGraph(), FixedController(1)) == set()
