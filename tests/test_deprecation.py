"""Deprecated entry points keep working — loudly."""

import warnings

import pytest

import repro
from repro.control.fixed import FixedController
from repro.runtime import CCEngine, OptimisticEngine
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import CallbackOperator, Task
from repro.runtime.workset import RandomWorkset


def _tiny_engine(cls):
    workset = RandomWorkset()
    workset.add_all([Task(payload=i) for i in range(8)])
    return cls(
        workset=workset,
        operator=CallbackOperator(
            neighborhood=lambda task: {task.payload}, apply=lambda task: []
        ),
        policy=ItemLockPolicy(),
        controller=FixedController(2),
        seed=0,
    )


class TestCCEngineShim:
    def test_warns_and_subclasses_optimistic_engine(self):
        with pytest.warns(DeprecationWarning, match="CCEngine is deprecated"):
            engine = _tiny_engine(CCEngine)
        assert isinstance(engine, OptimisticEngine)

    def test_shim_runs_identically(self):
        reference = _tiny_engine(OptimisticEngine).run()
        with pytest.warns(DeprecationWarning):
            shimmed = _tiny_engine(CCEngine).run()
        assert shimmed.total_committed == reference.total_committed
        assert shimmed.steps == reference.steps

    def test_importable_from_both_module_paths(self):
        from repro.runtime.engine import CCEngine as from_engine

        assert from_engine is CCEngine


class TestBareExperimentNameShim:
    def test_run_with_bare_string_warns_and_runs(self, monkeypatch):
        seen = {}

        def _fake(seed, quick):
            seen["args"] = (seed, quick)
            return "result"

        monkeypatch.setitem(
            repro.registry("experiment")._entries, "test-depr-exp", _fake
        )
        with pytest.warns(DeprecationWarning, match="bare experiment name"):
            out = repro.run("test-depr-exp")
        assert out == "result"
        assert seen["args"] == (None, False)

    def test_run_config_does_not_warn(self, monkeypatch):
        monkeypatch.setitem(
            repro.registry("experiment")._entries,
            "test-depr-exp2",
            lambda seed, quick: "ok",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.run(repro.RunConfig(experiment="test-depr-exp2")) == "ok"
