"""Deprecated entry points keep working — loudly."""

import warnings

import pytest

import repro
from repro.control.fixed import FixedController
from repro.runtime import CCEngine, OptimisticEngine
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.task import CallbackOperator, Task
from repro.runtime.workset import RandomWorkset


def _tiny_engine(cls):
    workset = RandomWorkset()
    workset.add_all([Task(payload=i) for i in range(8)])
    return cls(
        workset=workset,
        operator=CallbackOperator(
            neighborhood=lambda task: {task.payload}, apply=lambda task: []
        ),
        policy=ItemLockPolicy(),
        controller=FixedController(2),
        seed=0,
    )


class TestCCEngineShim:
    def test_warns_and_subclasses_optimistic_engine(self):
        with pytest.warns(DeprecationWarning, match="CCEngine is deprecated"):
            engine = _tiny_engine(CCEngine)
        assert isinstance(engine, OptimisticEngine)

    def test_shim_runs_identically(self):
        reference = _tiny_engine(OptimisticEngine).run()
        with pytest.warns(DeprecationWarning):
            shimmed = _tiny_engine(CCEngine).run()
        assert shimmed.total_committed == reference.total_committed
        assert shimmed.steps == reference.steps

    def test_importable_from_both_module_paths(self):
        from repro.runtime.engine import CCEngine as from_engine

        assert from_engine is CCEngine


class TestBareExperimentNameShim:
    def test_run_with_bare_string_warns_and_runs(self, monkeypatch):
        seen = {}

        def _fake(seed, quick):
            seen["args"] = (seed, quick)
            return "result"

        monkeypatch.setitem(
            repro.registry("experiment")._entries, "test-depr-exp", _fake
        )
        with pytest.warns(DeprecationWarning, match="bare experiment name"):
            out = repro.run("test-depr-exp")
        assert out == "result"
        assert seen["args"] == (None, False)

    def test_run_config_does_not_warn(self, monkeypatch):
        monkeypatch.setitem(
            repro.registry("experiment")._entries,
            "test-depr-exp2",
            lambda seed, quick: "ok",
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert repro.run(repro.RunConfig(experiment="test-depr-exp2")) == "ok"


class TestAppBuildEngineShim:
    """``AppWorkload.build_engine`` is a shim over ``make_engine``."""

    def _app(self, seed=0):
        from repro.apps import build_app_input, workload_from_input

        return workload_from_input(
            "coloring", build_app_input("coloring", 40, seed=seed), seed=seed
        )

    def test_build_engine_warns_with_replacement_named(self):
        app = self._app()
        with pytest.warns(DeprecationWarning, match="make_engine"):
            app.build_engine(FixedController(4), seed=1)

    def test_make_engine_never_warns(self):
        app = self._app()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            app.make_engine(FixedController(4), seed=1).run()

    def test_shim_is_byte_identical_to_make_engine(self):
        from repro.obs import TraceRecorder

        rec_new = TraceRecorder()
        self._app().make_engine(FixedController(4), seed=1, recorder=rec_new).run()

        rec_old = TraceRecorder()
        with pytest.warns(DeprecationWarning):
            engine = self._app().build_engine(
                FixedController(4), seed=1, recorder=rec_old
            )
        engine.run()
        assert rec_old.to_jsonl() == rec_new.to_jsonl()

    def test_unified_signature_accepts_step_hook_and_engine(self):
        calls = []
        app = self._app()
        engine = app.make_engine(
            FixedController(4),
            seed=2,
            step_hook=lambda *a, **k: calls.append(1),
            engine="reference",
        )
        engine.run()
        assert calls  # the hook reached the underlying engine

    def test_ordered_app_signature_is_unified_too(self):
        from repro.apps import build_app_input, workload_from_input

        des = workload_from_input("des", build_app_input("des", 4, seed=1), seed=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = des.make_engine(FixedController(3), seed=2, engine="reference").run()
        assert res.total_committed > 0
