"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.ccgraph import CCGraph
from repro.graph.generators import gnm_random


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; tests needing other streams spawn from it."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_graph() -> CCGraph:
    """A fixed 6-node graph with known structure (two triangles + bridge).

    Nodes 0-1-2 form a triangle, 3-4-5 form a triangle, edge 2-3 bridges.
    """
    return CCGraph.from_edges(
        6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


@pytest.fixture
def medium_random_graph() -> CCGraph:
    """A 300-node random graph with average degree 8 (seeded)."""
    return gnm_random(300, 8, seed=777)
