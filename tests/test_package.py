"""Package-level checks: public API surface and __all__ hygiene."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.utils",
    "repro.graph",
    "repro.model",
    "repro.runtime",
    "repro.control",
    "repro.apps",
    "repro.apps.delaunay",
    "repro.experiments",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_entries_exist(name):
    mod = importlib.import_module(name)
    for entry in getattr(mod, "__all__", []):
        assert hasattr(mod, entry), f"{name}.__all__ lists missing {entry}"


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


def test_exception_hierarchy():
    from repro import errors

    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, Exception)
        if name != "ReproError":
            assert issubclass(exc, errors.ReproError)


def test_paper_end_to_end_surface():
    """The README quickstart must work: graph -> workload -> controller -> run."""
    from repro.control import HybridController
    from repro.graph import gnm_random
    from repro.runtime import ConsumingGraphWorkload

    graph = gnm_random(200, 8, seed=0)
    workload = ConsumingGraphWorkload(graph)
    engine = workload.build_engine(HybridController(rho=0.25), seed=1)
    result = engine.run()
    assert result.total_committed == 200
