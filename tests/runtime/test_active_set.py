"""Tests for repro.runtime.active_set."""

import numpy as np
import pytest

from repro.errors import WorksetEmptyError
from repro.runtime.active_set import ActiveSet
from repro.runtime.task import Task
from repro.runtime.workset import RandomWorkset


def fill(ws, n):
    tasks = [Task(payload=i) for i in range(n)]
    ws.add_all(tasks)
    return tasks


class TestWorksetContract:
    def test_len_and_bool(self):
        ws = ActiveSet()
        assert len(ws) == 0 and not ws
        fill(ws, 3)
        assert len(ws) == 3 and ws

    def test_take_removes(self, rng):
        ws = ActiveSet()
        fill(ws, 10)
        batch = ws.take(4, rng)
        assert len(batch) == 4
        assert len(ws) == 6

    def test_take_more_than_available(self, rng):
        ws = ActiveSet()
        fill(ws, 3)
        batch = ws.take(10, rng)
        assert len(batch) == 3 and len(ws) == 0

    def test_take_zero(self, rng):
        ws = ActiveSet()
        fill(ws, 3)
        assert ws.take(0, rng) == []
        assert len(ws) == 3

    def test_take_from_empty_raises(self, rng):
        ws = ActiveSet()
        with pytest.raises(WorksetEmptyError):
            ws.take(1, rng)

    def test_take_negative_raises(self, rng):
        ws = ActiveSet()
        fill(ws, 1)
        with pytest.raises(ValueError):
            ws.take(-1, rng)

    def test_no_duplicates_across_takes(self, rng):
        ws = ActiveSet()
        tasks = fill(ws, 20)
        seen = []
        while ws:
            seen.extend(t.uid for t in ws.take(3, rng))
        assert sorted(seen) == sorted(t.uid for t in tasks)


class TestInsertionOrder:
    def test_add_preserves_slot_order(self):
        ws = ActiveSet()
        tasks = [Task(payload=i) for i in range(5)]
        for t in tasks:
            ws.add(t)
        assert ws.tasks() == tuple(tasks)

    def test_add_batch_matches_sequential_adds(self):
        a, b = ActiveSet(), ActiveSet()
        tasks = [Task(payload=i) for i in range(7)]
        a.add_batch(tasks)
        for t in tasks:
            b.add(t)
        assert a.tasks() == b.tasks()

    def test_add_all_is_add_batch(self):
        ws = ActiveSet()
        tasks = fill(ws, 4)
        assert ws.tasks() == tuple(tasks)


class TestMembership:
    def test_contains_and_index_of(self):
        ws = ActiveSet()
        tasks = fill(ws, 5)
        for i, t in enumerate(tasks):
            assert t in ws
            assert ws.index_of(t) == i
        stranger = Task(payload=99)
        assert stranger not in ws
        assert ws.index_of(stranger) is None

    def test_discard_present(self):
        ws = ActiveSet()
        tasks = fill(ws, 5)
        assert ws.discard(tasks[1]) is True
        assert len(ws) == 4
        assert tasks[1] not in ws
        # swap-removal: the old tail fills the vacated slot
        assert ws.index_of(tasks[4]) == 1

    def test_discard_absent_returns_false(self):
        ws = ActiveSet()
        tasks = fill(ws, 3)
        stranger = Task(payload=77)
        assert ws.discard(stranger) is False
        assert len(ws) == 3
        assert ws.tasks() == tuple(tasks)

    def test_discard_tail(self):
        ws = ActiveSet()
        tasks = fill(ws, 3)
        assert ws.discard(tasks[-1]) is True
        assert ws.tasks() == tuple(tasks[:-1])

    def test_discard_after_take_rebuilds_map(self, rng):
        ws = ActiveSet()
        fill(ws, 10)
        taken = ws.take(4, rng)
        for t in taken:
            assert t not in ws
            assert ws.discard(t) is False
        remaining = ws.tasks()
        assert ws.discard(remaining[0]) is True
        assert len(ws) == 5

    def test_discard_then_readd(self, rng):
        ws = ActiveSet()
        tasks = fill(ws, 4)
        ws.discard(tasks[2])
        ws.add(tasks[2])
        assert ws.index_of(tasks[2]) == len(ws) - 1
        assert sorted(t.uid for t in ws.tasks()) == sorted(t.uid for t in tasks)


class TestBitParityWithRandomWorkset:
    """ActiveSet.take must be bit-identical to RandomWorkset.take.

    Same seed -> same batches (payload for payload) AND the same
    post-call generator state, so swapping backends mid-suite can never
    perturb any downstream draw.
    """

    @pytest.mark.parametrize("seed", [0, 1, 2011, 99991])
    def test_single_take_parity(self, seed):
        for n, k in [(1, 1), (5, 2), (17, 17), (64, 1), (100, 37)]:
            a, b = ActiveSet(), RandomWorkset()
            a.add_all([Task(payload=i) for i in range(n)])
            b.add_all([Task(payload=i) for i in range(n)])
            ra = np.random.default_rng(seed)
            rb = np.random.default_rng(seed)
            ba = a.take(k, ra)
            bb = b.take(k, rb)
            assert [t.payload for t in ba] == [t.payload for t in bb]
            assert ra.bit_generator.state == rb.bit_generator.state

    @pytest.mark.parametrize("seed", [3, 17])
    def test_interleaved_ops_parity(self, seed):
        a, b = ActiveSet(), RandomWorkset()
        ra = np.random.default_rng(seed)
        rb = np.random.default_rng(seed)
        ops = np.random.default_rng(seed + 1)
        payload = 0
        for _ in range(200):
            roll = ops.random()
            if roll < 0.5 and len(a):
                k = int(ops.integers(0, len(a) + 3))
                ba = a.take(k, ra)
                bb = b.take(k, rb)
                assert [t.payload for t in ba] == [t.payload for t in bb]
            else:
                count = int(ops.integers(1, 6))
                fresh = [Task(payload=payload + i) for i in range(count)]
                payload += count
                a.add_batch(fresh)
                for t in fresh:
                    b.add(t)
            assert len(a) == len(b)
        assert ra.bit_generator.state == rb.bit_generator.state
