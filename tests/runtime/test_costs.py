"""Tests for repro.runtime.costs — the abort-cost accounting overlay."""

import pytest

from repro.control.fixed import FixedController
from repro.errors import RuntimeEngineError
from repro.graph.generators import complete_graph, empty_graph, gnm_random
from repro.runtime.costs import CostTotals, ScaledAbortCostModel, UnitCostModel
from repro.runtime.workloads import ConsumingGraphWorkload, ReplayGraphWorkload


class TestCostTotals:
    def test_empty_totals(self):
        t = CostTotals()
        assert t.total == 0.0 and t.wasted_fraction == 0.0

    def test_fraction(self):
        t = CostTotals(commit_cost=6.0, abort_cost=2.0)
        assert t.total == 8.0
        assert t.wasted_fraction == pytest.approx(0.25)


class TestUnitCosts:
    def test_matches_launch_counts(self):
        g = gnm_random(100, 8, seed=0)
        wl = ConsumingGraphWorkload(g)
        eng = wl.build_engine(FixedController(16), seed=1)
        res = eng.run()
        assert eng.costs.commit_cost == res.total_committed
        assert eng.costs.abort_cost == res.total_aborted
        assert eng.costs.total == res.processor_steps()

    def test_default_model_is_unit(self):
        g = empty_graph(5)
        wl = ConsumingGraphWorkload(g)
        eng = wl.build_engine(FixedController(5), seed=2)
        assert isinstance(eng.cost_model, UnitCostModel)
        eng.run()
        assert eng.costs.total == 5.0


class TestScaledAbortCosts:
    def test_aborts_scaled(self):
        g = complete_graph(10)
        wl = ReplayGraphWorkload(g)
        eng = wl.build_engine(
            FixedController(10), seed=3, cost_model=ScaledAbortCostModel(3.0)
        )
        eng.step()  # 1 commit, 9 aborts
        assert eng.costs.commit_cost == 1.0
        assert eng.costs.abort_cost == 27.0

    def test_free_aborts(self):
        g = complete_graph(6)
        wl = ReplayGraphWorkload(g)
        eng = wl.build_engine(
            FixedController(6), seed=4, cost_model=ScaledAbortCostModel(0.0)
        )
        eng.step()
        assert eng.costs.abort_cost == 0.0
        assert eng.costs.wasted_fraction == 0.0

    def test_negative_factor_rejected(self):
        with pytest.raises(RuntimeEngineError):
            ScaledAbortCostModel(-1.0)

    def test_expensive_aborts_shift_waste_up(self):
        g = gnm_random(200, 10, seed=5)
        wl1 = ConsumingGraphWorkload(g.copy())
        eng1 = wl1.build_engine(FixedController(32), seed=6)
        eng1.run()
        wl2 = ConsumingGraphWorkload(g.copy())
        eng2 = wl2.build_engine(
            FixedController(32), seed=6, cost_model=ScaledAbortCostModel(4.0)
        )
        eng2.run()
        assert eng2.costs.wasted_fraction > eng1.costs.wasted_fraction
