"""Tests for repro.runtime.workset."""

import numpy as np
import pytest

from repro.errors import WorksetEmptyError
from repro.runtime.task import Task
from repro.runtime.workset import FifoWorkset, LifoWorkset, RandomWorkset


def fill(ws, n):
    tasks = [Task(payload=i) for i in range(n)]
    ws.add_all(tasks)
    return tasks


@pytest.fixture(params=[RandomWorkset, FifoWorkset, LifoWorkset])
def workset(request):
    return request.param()


class TestCommonBehaviour:
    def test_len_and_bool(self, workset):
        assert len(workset) == 0 and not workset
        fill(workset, 3)
        assert len(workset) == 3 and workset

    def test_take_removes(self, workset, rng):
        fill(workset, 10)
        batch = workset.take(4, rng)
        assert len(batch) == 4
        assert len(workset) == 6

    def test_take_more_than_available(self, workset, rng):
        fill(workset, 3)
        batch = workset.take(10, rng)
        assert len(batch) == 3 and len(workset) == 0

    def test_take_from_empty_raises(self, workset, rng):
        with pytest.raises(WorksetEmptyError):
            workset.take(1, rng)

    def test_take_negative_raises(self, workset, rng):
        fill(workset, 1)
        with pytest.raises(ValueError):
            workset.take(-1, rng)

    def test_no_duplicates_across_takes(self, workset, rng):
        tasks = fill(workset, 20)
        seen = []
        while workset:
            seen.extend(t.uid for t in workset.take(3, rng))
        assert sorted(seen) == sorted(t.uid for t in tasks)


class TestOrderingPolicies:
    def test_fifo_order(self, rng):
        ws = FifoWorkset()
        tasks = fill(ws, 5)
        batch = ws.take(3, rng)
        assert [t.payload for t in batch] == [0, 1, 2]

    def test_lifo_order(self, rng):
        ws = LifoWorkset()
        fill(ws, 5)
        batch = ws.take(3, rng)
        assert [t.payload for t in batch] == [4, 3, 2]

    def test_random_is_uniform_prefix(self):
        # first element of a batch should be uniform over items
        counts = np.zeros(5)
        for seed in range(4000):
            ws = RandomWorkset()
            fill(ws, 5)
            batch = ws.take(2, np.random.default_rng(seed))
            counts[batch[0].payload] += 1
        assert counts.min() > 650  # expect 800 each

    def test_random_deterministic_given_rng(self):
        ws1, ws2 = RandomWorkset(), RandomWorkset()
        fill(ws1, 10)
        fill(ws2, 10)
        b1 = ws1.take(5, np.random.default_rng(9))
        b2 = ws2.take(5, np.random.default_rng(9))
        assert [t.payload for t in b1] == [t.payload for t in b2]
