"""Distribution tests for batch selection (satellite of the select rework).

The scheduler model of §2 requires the m active tasks to be a *uniform*
ordered sample without replacement from the n pending ones — the ``π_m``
prefix distribution.  These tests pin that down statistically for both
selection backends and bit-exactly for the vectorised kernel:

* :func:`~repro.runtime.kernels.sample_prefix_draws` must reproduce the
  reference scalar draw loop bit for bit (values *and* generator state);
* chi-square uniformity over all ordered m-tuples (small n, exact
  multinomial) for both ``RandomWorkset`` and ``ActiveSet``;
* chi-square uniformity of unordered batch *membership* (every
  C(n, m) subset equally likely);
* the full-permutation case m = n.

Fixed seeds throughout; alpha is generous (1e-4) so the suite is stable
while still catching any real bias (a wrong bound in one draw shows up
as a chi-square statistic orders of magnitude past the threshold).
"""

import itertools
import math

import numpy as np
import pytest
from scipy import stats

from repro.runtime.active_set import ActiveSet
from repro.runtime.kernels import sample_prefix_draws
from repro.runtime.task import Task
from repro.runtime.workset import RandomWorkset

BACKENDS = [RandomWorkset, ActiveSet]
ALPHA = 1e-4


def _batch_payloads(make_ws, n, m, rng):
    ws = make_ws()
    ws.add_all([Task(payload=i) for i in range(n)])
    return tuple(t.payload for t in ws.take(m, rng))


def _chi_square_uniform(counts, trials, num_outcomes):
    expected = trials / num_outcomes
    chi2 = sum((c - expected) ** 2 / expected for c in counts.values())
    # outcomes never observed still contribute their expectation
    chi2 += (num_outcomes - len(counts)) * expected
    return stats.chi2.sf(chi2, df=num_outcomes - 1)


class TestKernelBitParity:
    """The vectorised kernel IS the reference draw loop, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 7, 2011, 123456])
    def test_matches_scalar_loop_and_state(self, seed):
        for n, k in [(1, 1), (2, 1), (10, 10), (100, 3), (5000, 2500)]:
            ra = np.random.default_rng(seed)
            rb = np.random.default_rng(seed)
            vec = sample_prefix_draws(n, k, ra)
            ref = [int(rb.integers(0, n - i)) for i in range(k)]
            assert vec.tolist() == ref
            assert ra.bit_generator.state == rb.bit_generator.state

    def test_zero_draws(self):
        rng = np.random.default_rng(0)
        state = rng.bit_generator.state
        out = sample_prefix_draws(10, 0, rng)
        assert out.size == 0
        assert rng.bit_generator.state == state

    def test_bad_counts_raise(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_prefix_draws(5, -1, rng)
        with pytest.raises(ValueError):
            sample_prefix_draws(5, 6, rng)


@pytest.mark.parametrize("make_ws", BACKENDS)
class TestPrefixDistribution:
    """Both backends realise the uniform π_m prefix distribution."""

    def test_ordered_tuples_uniform(self, make_ws):
        # n=5, m=2: 20 ordered outcomes, exact multinomial chi-square
        n, m, trials = 5, 2, 20000
        rng = np.random.default_rng(42)
        counts = {}
        for _ in range(trials):
            key = _batch_payloads(make_ws, n, m, rng)
            counts[key] = counts.get(key, 0) + 1
        num = math.perm(n, m)
        assert set(counts) <= set(itertools.permutations(range(n), m))
        assert _chi_square_uniform(counts, trials, num) > ALPHA

    def test_membership_uniform(self, make_ws):
        # n=6, m=3: C(6,3)=20 subsets, each hit with equal probability
        n, m, trials = 6, 3, 20000
        rng = np.random.default_rng(7)
        counts = {}
        for _ in range(trials):
            key = tuple(sorted(_batch_payloads(make_ws, n, m, rng)))
            counts[key] = counts.get(key, 0) + 1
        num = math.comb(n, m)
        assert _chi_square_uniform(counts, trials, num) > ALPHA

    def test_full_permutation_uniform(self, make_ws):
        # m = n drains the set: every ordering of all n tasks equally likely
        n, trials = 4, 24000
        rng = np.random.default_rng(11)
        counts = {}
        for _ in range(trials):
            key = _batch_payloads(make_ws, n, n, rng)
            counts[key] = counts.get(key, 0) + 1
        num = math.factorial(n)
        assert _chi_square_uniform(counts, trials, num) > ALPHA

    def test_first_element_marginal_uniform(self, make_ws):
        # the head of the batch alone must be uniform over all n tasks
        n, trials = 10, 30000
        rng = np.random.default_rng(13)
        counts = {}
        for _ in range(trials):
            head = _batch_payloads(make_ws, n, 1, rng)[0]
            counts[head] = counts.get(head, 0) + 1
        assert _chi_square_uniform(counts, trials, n) > ALPHA


class TestBackendEquivalence:
    """The two backends draw literally the same batches under one seed."""

    @pytest.mark.parametrize("seed", [0, 5, 2011])
    def test_identical_batch_streams(self, seed):
        n = 40
        a, b = ActiveSet(), RandomWorkset()
        a.add_all([Task(payload=i) for i in range(n)])
        b.add_all([Task(payload=i) for i in range(n)])
        ra = np.random.default_rng(seed)
        rb = np.random.default_rng(seed)
        while a:
            ba = a.take(7, ra)
            bb = b.take(7, rb)
            assert [t.payload for t in ba] == [t.payload for t in bb]
        assert not b
        assert ra.bit_generator.state == rb.bit_generator.state
