"""Cross-shard equivalence battery for the sharded commit order.

The sharded policy's correctness contract has two halves:

* **Degenerate exactness** — ``shards=1`` is not "approximately" the
  unordered policy, it *is* the unordered policy: byte-identical traces
  (including the engine RNG's final generator state) on the golden
  corpus, on both engine modes, against the checked-in golden fixture.
* **Multi-shard conflict-serializability** — with any shard count, the
  set of nodes committed in one round must be pairwise non-adjacent in
  the graph as it stood *at that round*.  A trace validator replays the
  ``halo_exchange`` events against an independently mutated graph copy
  to enforce it; the fast path, the reference path, and the
  process-backed :func:`repro.runtime.run_sharded` must all agree
  byte-for-byte.
"""

from __future__ import annotations

import json
import os
from itertools import combinations
from pathlib import Path

import pytest

from repro.config import RunConfig
from repro.control import HybridController
from repro.graph.generators import gnm_random
from repro.obs import HALO_EXCHANGE, TraceRecorder
from repro.runtime.core import Engine
from repro.runtime.policies import ShardedCommitOrder, UnorderedCommitOrder
from repro.runtime.sharded import run_sharded
from repro.runtime.workloads import ConsumingGraphWorkload

# golden-corpus settings (tests/obs/test_golden.py) with a CI-rotatable
# engine seed: the flaky-hunter varies REPRO_TEST_SEED to shake out
# seed-dependent equivalence failures
BASE_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))
GRAPH_SEED = 2011
ENGINE_SEED = 8 + BASE_SEED
MAX_STEPS = 40

FIXTURE = (
    Path(__file__).parent.parent / "obs" / "fixtures" / "golden_hybrid_gnm200_d8.jsonl"
)


def _graph():
    return gnm_random(200, 8, seed=GRAPH_SEED)


def _api_trace(order, *, workload="consuming", mode=None, shards=None, seed=None):
    """One recorded ``api.run`` over the shared corpus; returns (jsonl, result)."""
    from repro.api import run as api_run

    recorder = TraceRecorder()
    config = RunConfig(
        workload=workload,
        rho=0.25,
        m_max=64,
        order=order,
        shards=shards,
        max_steps=MAX_STEPS,
        engine=mode,
    )
    res = api_run(
        config,
        graph=_graph(),
        seed=ENGINE_SEED if seed is None else seed,
        recorder=recorder,
    )
    return recorder, res


def _engine_run(order_cls, mode, **order_kwargs):
    """One manually wired engine run; returns (recorder, engine)."""
    recorder = TraceRecorder()
    workload = ConsumingGraphWorkload(_graph())
    order = order_cls(workload.policy, **order_kwargs)
    engine = Engine(
        workset=workload.workset,
        operator=workload.operator,
        controller=HybridController(0.25, m_max=64),
        order=order,
        seed=ENGINE_SEED,
        recorder=recorder,
        engine=mode,
    )
    engine.run(max_steps=MAX_STEPS)
    return recorder, engine


class TestOneShardByteIdentity:
    @pytest.mark.parametrize("mode", ["reference", "fast"])
    @pytest.mark.parametrize("workload", ["consuming", "replay"])
    def test_trace_identical_to_unordered(self, mode, workload):
        sharded, _ = _api_trace("sharded", workload=workload, mode=mode, shards=1)
        unordered, _ = _api_trace("unordered", workload=workload, mode=mode)
        assert sharded.to_jsonl() == unordered.to_jsonl()

    @pytest.mark.parametrize("mode", ["reference", "fast"])
    def test_rng_generator_state_identical(self, mode):
        # byte-identical traces could still hide divergent RNG consumption
        # (e.g. an extra draw that never changes this run's decisions);
        # identical final generator state rules that out
        _, sharded = _engine_run(ShardedCommitOrder, mode, shards=1)
        _, unordered = _engine_run(UnorderedCommitOrder, mode)
        assert (
            sharded.rng.bit_generator.state == unordered.rng.bit_generator.state
        )

    def test_agrees_with_golden_fixture_modulo_engine_name(self):
        # the order path stamps engine="Engine" in run_start where the
        # golden fixture's build_engine path stamped "OptimisticEngine";
        # every other byte must match the checked-in fixture
        if ENGINE_SEED != 8:
            pytest.skip("golden fixture is pinned to the seed-0 corpus")
        recorder, _ = _engine_run(ShardedCommitOrder, None, shards=1)
        ours = [json.loads(line) for line in recorder.to_jsonl().splitlines()]
        golden = [
            json.loads(line)
            for line in FIXTURE.read_text(encoding="utf-8").splitlines()
        ]
        # golden runs 60 steps; compare the common 40-step prefix
        assert ours[0]["kind"] == golden[0]["kind"] == "run_start"
        assert ours[0]["data"].pop("engine") == "Engine"
        assert golden[0]["data"].pop("engine") == "OptimisticEngine"
        assert ours[0] == golden[0]
        # golden runs 60 steps, ours 40: our body must be a golden prefix
        assert ours[-1]["kind"] == "run_end"
        body = ours[1:-1]
        assert body == golden[1 : 1 + len(body)]


class TestMultiShardEquivalence:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    @pytest.mark.parametrize("workload", ["consuming", "replay"])
    def test_fast_equals_reference(self, shards, workload):
        fast, _ = _api_trace(f"sharded:{shards}", workload=workload, mode="fast")
        ref, _ = _api_trace(f"sharded:{shards}", workload=workload, mode="reference")
        assert fast.to_jsonl() == ref.to_jsonl()

    def test_config_field_equals_spec_param(self):
        spec, _ = _api_trace("sharded:4")
        field, _ = _api_trace("sharded", shards=4)
        assert spec.to_jsonl() == field.to_jsonl()

    def test_not_degenerate(self):
        recorder, res = _api_trace("sharded:4")
        halo = [ev for ev in recorder.events if ev.kind == HALO_EXCHANGE]
        assert halo, "multi-shard run emitted no halo_exchange events"
        assert res.total_aborted > 0 and res.total_committed > 0
        assert sum(ev.data["halo_aborts"] for ev in halo) > 0, (
            "corpus never exercised a cut-edge abort"
        )


def _validate_serializability(recorder, graph, consuming: bool):
    """Replay halo_exchange rounds against *graph*, asserting independence."""
    rounds = 0
    for ev in recorder.events:
        if ev.kind != HALO_EXCHANGE:
            continue
        committed = ev.data["committed_nodes"]
        assert len(committed) == len(set(committed)), "node committed twice"
        for u, v in combinations(committed, 2):
            assert not graph.has_edge(u, v), (
                f"step {ev.step}: committed neighbours {u}-{v} "
                "(conflict-serializability violated)"
            )
        if consuming:
            for u in committed:
                graph.remove_node(u)
        rounds += 1
    return rounds


class TestConflictSerializability:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    @pytest.mark.parametrize("mode", ["reference", "fast"])
    def test_no_committed_neighbours_per_round(self, shards, mode):
        recorder, _ = _api_trace(f"sharded:{shards}", mode=mode)
        rounds = _validate_serializability(recorder, _graph(), consuming=True)
        assert rounds > 0

    def test_replay_rounds_validate_against_static_graph(self):
        recorder, _ = _api_trace("sharded:4", workload="replay")
        rounds = _validate_serializability(recorder, _graph(), consuming=False)
        assert rounds == MAX_STEPS


class TestProcessBackedRuntime:
    @pytest.mark.parametrize("workload", ["consuming", "replay"])
    def test_run_sharded_matches_in_process(self, workload):
        config = RunConfig(
            workload=workload,
            rho=0.25,
            m_max=64,
            order="sharded:3",
            max_steps=25,
        )
        pool_rec = TraceRecorder()
        run_sharded(config, _graph(), seed=ENGINE_SEED, recorder=pool_rec)

        from repro.api import run as api_run

        local_rec = TraceRecorder()
        api_run(config, graph=_graph(), seed=ENGINE_SEED, recorder=local_rec)
        assert pool_rec.to_jsonl() == local_rec.to_jsonl()

    def test_one_shard_run_sharded_matches_unordered(self):
        config = RunConfig(
            workload="consuming",
            rho=0.25,
            m_max=64,
            order="sharded",
            shards=1,
            max_steps=25,
        )
        rec = TraceRecorder()
        run_sharded(config, _graph(), seed=ENGINE_SEED, recorder=rec)

        from repro.api import run as api_run

        plain_config = RunConfig(
            workload="consuming",
            rho=0.25,
            m_max=64,
            order="unordered",
            max_steps=25,
        )
        plain = TraceRecorder()
        api_run(plain_config, graph=_graph(), seed=ENGINE_SEED, recorder=plain)
        assert rec.to_jsonl() == plain.to_jsonl()
