"""Tests for repro.runtime.engine — step semantics and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control.fixed import FixedController
from repro.errors import RuntimeEngineError
from repro.graph.generators import complete_graph, empty_graph, gnm_random
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.engine import OptimisticEngine
from repro.runtime.task import CallbackOperator, Task
from repro.runtime.workloads import ConsumingGraphWorkload, ReplayGraphWorkload
from repro.runtime.workset import RandomWorkset


def simple_engine(num_tasks: int, m: int, seed=0) -> OptimisticEngine:
    """Engine over conflict-free unit tasks."""
    ws = RandomWorkset()
    for i in range(num_tasks):
        ws.add(Task(payload=i))
    op = CallbackOperator(neighborhood=lambda t: {t.payload}, apply=lambda t: [])
    return OptimisticEngine(ws, op, ItemLockPolicy(), FixedController(m), seed=seed)


class TestStepSemantics:
    def test_conflict_free_drains_in_ceil_steps(self):
        eng = simple_engine(10, 4)
        res = eng.run()
        assert len(res) == 3  # 4 + 4 + 2
        assert res.total_committed == 10
        assert res.total_aborted == 0

    def test_step_on_empty_raises(self):
        eng = simple_engine(1, 1)
        eng.run()
        with pytest.raises(RuntimeEngineError):
            eng.step()

    def test_requested_vs_launched(self):
        eng = simple_engine(3, 10)
        stats = eng.step()
        assert stats.requested == 10
        assert stats.launched == 3

    def test_commits_plus_aborts_equals_launched(self):
        g = gnm_random(100, 8, seed=1)
        wl = ConsumingGraphWorkload(g)
        eng = wl.build_engine(FixedController(16), seed=2)
        res = eng.run(max_steps=50)
        for s in res.steps:
            assert s.committed + s.aborted == s.launched

    def test_aborted_tasks_return_to_workset(self):
        g = complete_graph(6)
        wl = ReplayGraphWorkload(g)
        eng = wl.build_engine(FixedController(6), seed=3)
        stats = eng.step()
        assert stats.committed == 1 and stats.aborted == 5
        assert stats.workset_after == 6  # replay re-adds everything

    def test_consuming_workload_drains_graph(self):
        g = gnm_random(40, 4, seed=4)
        wl = ConsumingGraphWorkload(g)
        eng = wl.build_engine(FixedController(8), seed=5)
        res = eng.run()
        assert g.num_nodes == 0
        assert res.total_committed == 40

    def test_max_steps_respected(self):
        wl = ReplayGraphWorkload(gnm_random(30, 3, seed=6))
        eng = wl.build_engine(FixedController(4), seed=7)
        res = eng.run(max_steps=12)
        assert len(res) == 12
        assert eng.steps_executed == 12

    def test_negative_max_steps_raises(self):
        eng = simple_engine(2, 1)
        with pytest.raises(RuntimeEngineError):
            eng.run(max_steps=-1)

    def test_controller_observes_each_step(self):
        eng = simple_engine(9, 3)
        eng.run()
        ctrl = eng.controller
        assert len(ctrl.trace.observations) == 3
        assert all(r == 0.0 for r in ctrl.trace.observations)

    def test_step_hook_invoked(self):
        seen = []
        ws = RandomWorkset()
        ws.add(Task(payload=0))
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        eng = OptimisticEngine(
            ws, op, ItemLockPolicy(), FixedController(1), seed=0,
            step_hook=lambda engine, stats: seen.append(stats.step),
        )
        eng.run()
        assert seen == [0]

    def test_new_tasks_scheduled(self):
        # each task spawns one child until payload reaches 3
        ws = RandomWorkset()
        ws.add(Task(payload=0))
        op = CallbackOperator(
            neighborhood=lambda t: (),
            apply=lambda t: [Task(payload=t.payload + 1)] if t.payload < 3 else [],
        )
        eng = OptimisticEngine(ws, op, ItemLockPolicy(), FixedController(2), seed=0)
        res = eng.run()
        assert res.total_committed == 4  # payloads 0,1,2,3


class TestRetryTracking:
    def test_no_conflicts_no_retries(self):
        eng = simple_engine(10, 4)
        eng.run()
        assert eng.max_pending_retries() == 0
        assert eng.retry_counts == {}

    def test_retries_counted_and_cleared(self):
        g = complete_graph(5)
        wl = ConsumingGraphWorkload(g)
        eng = wl.build_engine(FixedController(5), seed=0)
        eng.step()  # 1 commit, 4 aborts
        assert eng.max_pending_retries() == 1
        assert len(eng.retry_counts) == 4
        eng.run()  # drain: everyone eventually commits
        assert eng.retry_counts == {}

    def test_heavy_contention_grows_retries(self):
        g = complete_graph(20)
        wl = ReplayGraphWorkload(g)
        eng = wl.build_engine(FixedController(20), seed=1)
        for _ in range(10):
            eng.step()
        assert eng.max_pending_retries() >= 2


class TestEngineInvariantsPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 60), st.floats(0, 6), st.integers(1, 32), st.integers(0, 100))
    def test_commit_set_independent_every_step(self, n, d, m, seed):
        """Each step's committed payloads form an independent set."""
        d = min(d, n - 1.0)
        g = gnm_random(n, d, seed=seed)
        frozen = g.copy()
        committed_batches = []
        wl = ConsumingGraphWorkload(g)

        orig_resolve = wl.policy.resolve

        def spy(batch, operator):
            out = orig_resolve(batch, operator)
            committed_batches.append([t.payload for t in out.committed])
            return out

        wl.policy.resolve = spy
        wl.build_engine(FixedController(m), seed=seed).run(max_steps=200)
        for batch in committed_batches:
            batch_set = set(batch)
            for u in batch:
                assert batch_set.isdisjoint(frozen.neighbors(u))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 50), st.integers(1, 16), st.integers(0, 50))
    def test_work_conservation(self, n, m, seed):
        """Total commits equal the number of tasks for consuming workloads."""
        g = empty_graph(n)
        wl = ConsumingGraphWorkload(g)
        res = wl.build_engine(FixedController(m), seed=seed).run()
        assert res.total_committed == n
        assert res.total_aborted == 0
