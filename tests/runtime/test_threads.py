"""Tests for repro.runtime.threads — the demo concurrent executor."""

import pytest

from repro.errors import RuntimeEngineError
from repro.graph.generators import gnm_random
from repro.runtime.task import CallbackOperator, Task
from repro.runtime.threads import ThreadedSpeculativeExecutor


class TestThreadedExecutor:
    def test_disjoint_batch_all_commits(self):
        op = CallbackOperator(neighborhood=lambda t: {t.payload}, apply=lambda t: [])
        ex = ThreadedSpeculativeExecutor(op, max_threads=4)
        out, created = ex.execute_batch([Task(payload=i) for i in range(8)])
        assert len(out.committed) == 8 and not out.aborted and not created

    def test_total_conflict_one_commits(self):
        op = CallbackOperator(neighborhood=lambda t: {"shared"}, apply=lambda t: [])
        ex = ThreadedSpeculativeExecutor(op, max_threads=4)
        out, _ = ex.execute_batch([Task(payload=i) for i in range(6)])
        assert len(out.committed) == 1 and len(out.aborted) == 5

    def test_committed_set_is_independent(self):
        g = gnm_random(60, 6, seed=0)
        op = CallbackOperator(
            neighborhood=lambda t: {t.payload} | set(g.neighbors(t.payload)),
            apply=lambda t: [],
        )
        ex = ThreadedSpeculativeExecutor(op, max_threads=8)
        out, _ = ex.execute_batch([Task(payload=u) for u in g.nodes()[:30]])
        cset = {t.payload for t in out.committed}
        for u in cset:
            assert cset.isdisjoint(g.neighbors(u))
        assert len(out.committed) + len(out.aborted) == 30

    def test_created_tasks_collected(self):
        op = CallbackOperator(
            neighborhood=lambda t: {t.payload},
            apply=lambda t: [Task(payload=("child", t.payload))],
        )
        ex = ThreadedSpeculativeExecutor(op, max_threads=2)
        out, created = ex.execute_batch([Task(payload=i) for i in range(5)])
        assert len(created) == len(out.committed) == 5

    def test_abort_hook_called(self):
        aborted = []
        op = CallbackOperator(
            neighborhood=lambda t: {"x"},
            apply=lambda t: [],
            on_abort=lambda t: aborted.append(t.uid),
        )
        ex = ThreadedSpeculativeExecutor(op, max_threads=3)
        out, _ = ex.execute_batch([Task(payload=i) for i in range(4)])
        assert len(aborted) == len(out.aborted) == 3

    def test_invalid_thread_count(self):
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        with pytest.raises(RuntimeEngineError):
            ThreadedSpeculativeExecutor(op, max_threads=0)


class TestSeededExecutor:
    """The deterministic (seeded) execution mode."""

    @staticmethod
    def _graph_op(g):
        return CallbackOperator(
            neighborhood=lambda t: {t.payload} | set(g.neighbors(t.payload)),
            apply=lambda t: [Task(payload=("child", t.payload))],
        )

    def test_partition_and_independence(self):
        g = gnm_random(60, 6, seed=0)
        ex = ThreadedSpeculativeExecutor(self._graph_op(g), max_threads=4, seed=7)
        batch = [Task(payload=u) for u in g.nodes()[:30]]
        out, created = ex.execute_batch(batch)
        assert len(out.committed) + len(out.aborted) == len(batch)
        assert {t.uid for t in out.committed}.isdisjoint(t.uid for t in out.aborted)
        cset = {t.payload for t in out.committed}
        for u in cset:
            assert cset.isdisjoint(g.neighbors(u))
        assert len(created) == len(out.committed)

    def test_same_seed_same_outcome(self):
        g = gnm_random(60, 6, seed=1)
        batch = [Task(payload=u) for u in g.nodes()[:30]]
        runs = []
        for _ in range(2):
            ex = ThreadedSpeculativeExecutor(self._graph_op(g), max_threads=8, seed=42)
            out, created = ex.execute_batch(batch)
            runs.append(
                (
                    [t.payload for t in out.committed],
                    [t.payload for t in out.aborted],
                    [t.payload for t in created],
                )
            )
        assert runs[0] == runs[1]

    def test_different_seeds_can_differ(self):
        op = CallbackOperator(neighborhood=lambda t: {"shared"}, apply=lambda t: [])
        batch = [Task(payload=i) for i in range(10)]
        winners = set()
        for seed in range(8):
            ex = ThreadedSpeculativeExecutor(op, max_threads=2, seed=seed)
            out, _ = ex.execute_batch(batch)
            assert len(out.committed) == 1
            winners.add(out.committed[0].payload)
        assert len(winners) > 1  # the claim order really is seed-driven

    def test_seeded_abort_hook_called(self):
        aborted = []
        op = CallbackOperator(
            neighborhood=lambda t: {"x"},
            apply=lambda t: [],
            on_abort=lambda t: aborted.append(t.uid),
        )
        ex = ThreadedSpeculativeExecutor(op, max_threads=3, seed=0)
        out, _ = ex.execute_batch([Task(payload=i) for i in range(4)])
        assert len(aborted) == len(out.aborted) == 3
