"""Tests for repro.runtime.recording — trace persistence and diffing."""

import pytest

from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import RuntimeEngineError
from repro.graph.generators import gnm_random
from repro.runtime.recording import RunRecorder, diff_runs, load_run, save_run
from repro.runtime.workloads import ConsumingGraphWorkload


@pytest.fixture
def sample_run():
    wl = ConsumingGraphWorkload(gnm_random(80, 6, seed=0))
    eng = wl.build_engine(HybridController(0.25), seed=1)
    return eng.run()


class TestRoundTrip:
    def test_recorder_captures_every_step(self, tmp_path):
        wl = ConsumingGraphWorkload(gnm_random(50, 4, seed=2))
        recorder = RunRecorder(metadata={"workload": "gnm50"})
        eng = wl.build_engine(FixedController(8), seed=3, step_hook=recorder)
        res = eng.run()
        assert len(recorder.records) == len(res)
        out = tmp_path / "run.jsonl"
        recorder.save(out)
        loaded, meta = load_run(out)
        assert meta == {"workload": "gnm50"}
        assert loaded.m_trace.tolist() == res.m_trace.tolist()

    def test_save_run_direct(self, sample_run, tmp_path):
        out = tmp_path / "run.jsonl"
        save_run(sample_run, out, metadata={"seed": 1})
        loaded, meta = load_run(out)
        assert meta == {"seed": 1}
        assert loaded.total_committed == sample_run.total_committed
        assert loaded.total_aborted == sample_run.total_aborted
        assert loaded.r_trace.tolist() == pytest.approx(sample_run.r_trace.tolist())

    def test_empty_run(self, tmp_path):
        from repro.runtime.stats import RunResult

        out = tmp_path / "empty.jsonl"
        save_run(RunResult(), out)
        loaded, _ = load_run(out)
        assert len(loaded) == 0


class TestMalformedInput:
    def test_empty_file(self, tmp_path):
        f = tmp_path / "x.jsonl"
        f.write_text("")
        with pytest.raises(RuntimeEngineError):
            load_run(f)

    def test_missing_header(self, tmp_path):
        f = tmp_path / "x.jsonl"
        f.write_text('{"step": 0}\n')
        with pytest.raises(RuntimeEngineError):
            load_run(f)

    def test_bad_json(self, tmp_path):
        f = tmp_path / "x.jsonl"
        f.write_text('{"metadata": {}}\nnot json\n')
        with pytest.raises(RuntimeEngineError):
            load_run(f)

    def test_missing_field(self, tmp_path):
        f = tmp_path / "x.jsonl"
        f.write_text('{"metadata": {}}\n{"step": 0}\n')
        with pytest.raises(RuntimeEngineError):
            load_run(f)


class TestDiff:
    def test_identical_runs_zero_diff(self, sample_run):
        d = diff_runs(sample_run, sample_run, target=20)
        assert all(v == 0.0 for v in d.values())

    def test_improvement_is_negative(self):
        g = gnm_random(120, 8, seed=4)
        slow = ConsumingGraphWorkload(g.copy()).build_engine(
            FixedController(2), seed=5
        ).run()
        fast = ConsumingGraphWorkload(g.copy()).build_engine(
            FixedController(32), seed=5
        ).run()
        d = diff_runs(slow, fast)
        assert d["makespan"] < 0  # fast run shorter
        assert d["wasted_fraction"] > 0  # but wastes more

    def test_target_adds_settling(self, sample_run):
        d = diff_runs(sample_run, sample_run, target=10)
        assert "settling_step" in d
