"""Tests for repro.runtime.ordered — priority-ordered speculation."""

import pytest

from repro.control.fixed import FixedController
from repro.errors import RuntimeEngineError, WorksetEmptyError
from repro.runtime.ordered import OrderedEngine, PriorityWorkset
from repro.runtime.task import CallbackOperator, Task


class TestPriorityWorkset:
    def test_earliest_first(self):
        ws = PriorityWorkset()
        ws.add(Task(payload="b"), 2.0)
        ws.add(Task(payload="a"), 1.0)
        ws.add(Task(payload="c"), 3.0)
        batch = ws.take_earliest(2)
        assert [t.payload for _, t in batch] == ["a", "b"]
        assert len(ws) == 1

    def test_fifo_tiebreak(self):
        ws = PriorityWorkset()
        ws.add(Task(payload="first"), 1.0)
        ws.add(Task(payload="second"), 1.0)
        batch = ws.take_earliest(2)
        assert [t.payload for _, t in batch] == ["first", "second"]

    def test_peek(self):
        ws = PriorityWorkset()
        ws.add(Task(payload=0), 5.0)
        assert ws.peek_priority() == 5.0
        assert len(ws) == 1  # peek does not remove

    def test_empty_raises(self):
        ws = PriorityWorkset()
        with pytest.raises(WorksetEmptyError):
            ws.take_earliest(1)
        with pytest.raises(WorksetEmptyError):
            ws.peek_priority()

    def test_negative_take_raises(self):
        ws = PriorityWorkset()
        ws.add(Task(payload=0), 1.0)
        with pytest.raises(ValueError):
            ws.take_earliest(-1)


def make_engine(tasks, neighborhoods, children=None, m=4):
    """Engine over explicit (priority, payload) tasks.

    *neighborhoods* maps payload -> item set; *children* maps payload ->
    list of (child_payload, child_priority) created on commit.
    """
    children = children or {}
    ws = PriorityWorkset()
    prio_of = {}
    for payload, prio in tasks:
        prio_of[payload] = prio
        ws.add(Task(payload=payload), prio)

    def apply(task):
        out = []
        for child_payload, child_prio in children.get(task.payload, []):
            prio_of[child_payload] = child_prio
            neighborhoods.setdefault(child_payload, set())
            out.append(Task(payload=child_payload))
        return out

    op = CallbackOperator(
        neighborhood=lambda t: neighborhoods.get(t.payload, set()), apply=apply
    )
    eng = OrderedEngine(
        workset=ws,
        operator=op,
        controller=FixedController(m),
        priority_of=lambda t: prio_of[t.payload],
        seed=0,
    )
    return eng


class TestOrderedResolution:
    def test_disjoint_batch_commits_in_order(self):
        eng = make_engine([("a", 1), ("b", 2), ("c", 3)], {"a": {1}, "b": {2}, "c": {3}})
        stats = eng.step()
        assert stats.committed == 3 and stats.aborted == 0

    def test_conflict_earliest_wins(self):
        eng = make_engine([("a", 1), ("b", 2)], {"a": {"x"}, "b": {"x"}})
        stats = eng.step()
        assert stats.committed == 1
        # the barrier also blocks nothing here beyond b itself
        assert eng.conflict_aborts_total == 1

    def test_barrier_blocks_later_survivors(self):
        """b conflict-aborts at prio 2 -> c (prio 3, no conflict) must wait."""
        eng = make_engine(
            [("a", 1), ("b", 2), ("c", 3)],
            {"a": {"x"}, "b": {"x"}, "c": {"y"}},
        )
        stats = eng.step()
        assert stats.committed == 1  # only a
        assert eng.conflict_aborts_total == 1  # b
        assert eng.order_aborts_total == 1  # c blocked by the barrier

    def test_created_past_work_order_aborts(self):
        """a creates work at prio 1.5; c at prio 3 must not commit."""
        eng = make_engine(
            [("a", 1), ("c", 3)],
            {"a": {"x"}, "c": {"y"}},
            children={"a": [("child", 1.5)]},
        )
        stats = eng.step()
        assert stats.committed == 1
        assert eng.order_aborts_total == 1

    def test_causality_violation_raises(self):
        eng = make_engine(
            [("a", 5)],
            {"a": {"x"}},
            children={"a": [("past", 1.0)]},
        )
        with pytest.raises(RuntimeEngineError):
            eng.step()

    def test_aborted_tasks_retried(self):
        eng = make_engine([("a", 1), ("b", 2)], {"a": {"x"}, "b": {"x"}})
        res = eng.run()
        assert res.total_committed == 2
        assert len(res) == 2  # conflict forces a second step

    def test_commit_order_globally_chronological(self):
        committed_prios = []
        neigh = {i: {i % 3} for i in range(30)}  # heavy contention
        eng = make_engine([(i, float(i % 7) + i / 100.0) for i in range(30)], neigh, m=10)
        orig = eng._resolve

        def spy(batch):
            out = orig(batch)
            committed_prios.extend(p for p, _ in out.committed)
            return out

        eng._resolve = spy
        eng.run(max_steps=500)
        assert committed_prios == sorted(committed_prios)

    def test_empty_step_raises(self):
        eng = make_engine([("a", 1)], {"a": set()})
        eng.run()
        with pytest.raises(RuntimeEngineError):
            eng.step()

    def test_bad_max_steps(self):
        eng = make_engine([("a", 1)], {"a": set()})
        with pytest.raises(RuntimeEngineError):
            eng.run(max_steps=-1)


class TestPerStepRNGSubstreams:
    """Regression: step-k randomness is a pure function of (seed, k).

    The engine used to hand operators one long-lived generator, so any
    extra draw during an early step (e.g. inside a rollback retry) shifted
    every later step's randomness.  ``engine.rng`` is now re-derived as
    ``substream(seed, "ordered-step", k)`` at the top of each step.
    """

    @staticmethod
    def _engine():
        tasks = [(i, float(i)) for i in range(12)]
        neigh = {i: {i % 4} for i in range(12)}
        return make_engine(tasks, neigh, m=4)

    def test_extra_draws_do_not_shift_later_steps(self):
        noisy, clean = self._engine(), self._engine()
        noisy.rng.random(100)  # e.g. a retry loop consuming extra entropy
        noisy.step()
        clean.step()
        assert noisy.rng.random(8).tolist() == clean.rng.random(8).tolist()

    def test_step_stream_matches_direct_derivation(self):
        from repro.utils.rng import substream

        eng = self._engine()
        eng.step()
        executed = eng._step  # index the next step will derive from
        eng.step()
        expected = substream(0, "ordered-step", executed).random(4)
        assert eng.rng.random(4).tolist() == expected.tolist()

    def test_generator_seed_passthrough(self):
        import numpy as np

        ws = PriorityWorkset()
        ws.add(Task(payload="a"), 1.0)
        gen = np.random.default_rng(3)
        eng = OrderedEngine(
            workset=ws,
            operator=CallbackOperator(
                neighborhood=lambda t: set(), apply=lambda t: []
            ),
            controller=FixedController(1),
            priority_of=lambda t: 1.0,
            seed=gen,
        )
        assert eng.rng is gen  # caller-owned generators are used as-is
        eng.step()
        assert eng.rng is gen  # and never silently replaced
