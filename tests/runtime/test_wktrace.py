"""Workload-trace record/replay substrate (:mod:`repro.runtime.wktrace`).

Covers the three layers — :class:`WorkloadTrace` serialisation and
integrity checking, :class:`WorkloadCapture` recording through live
engine runs, :class:`TraceReplayWorkload` deterministic re-execution —
plus the two cross-cutting equivalence gates the substrate exists for:
a recorded trace replays *byte-identically* across selection backends,
and commits the *same work* under ``shards=1`` vs ``shards=2``.
"""

import pytest

from repro import RunConfig
from repro.api import run
from repro.control.fixed import FixedController
from repro.errors import ConfigError, ObservabilityError, ReplayMismatchError
from repro.graph.generators import gnm_random
from repro.obs import TraceRecorder, recording
from repro.runtime.wktrace import (
    TraceReplayWorkload,
    WorkloadCapture,
    WorkloadTrace,
)
from repro.runtime.workloads import ConsumingGraphWorkload

SEED = 17


def _record_boruvka(tmp_path, scale=50, seed=SEED):
    path = tmp_path / "boruvka.wktrace"
    res = run(RunConfig(workload=f"boruvka:{scale}", seed=seed), record_workload=str(path))
    return path, res


class TestWorkloadTraceSerialisation:
    def _tiny_trace(self):
        trace = WorkloadTrace(label="tiny", requires_order=False)
        a = trace.add_task(0, priority=0.0, parent=None)
        b = trace.add_task(1, priority=1.0, parent=None)
        c = trace.add_task("payload", priority=None, parent=a)
        trace.set_items(a, ["x", "y"])
        trace.set_items(b, ["y"])
        trace.add_commit(a, items=["x", "y"], children=[c], ops=[("remove_node", 0)])
        trace.add_commit(b, items=["y"], children=[], ops=[])
        trace.aborts = 3
        return trace

    def test_round_trip_is_lossless_and_byte_stable(self):
        trace = self._tiny_trace()
        text = trace.to_jsonl()
        reloaded = WorkloadTrace.from_jsonl(text)
        assert reloaded.to_jsonl() == text
        assert reloaded.label == "tiny"
        assert reloaded.aborts == 3
        assert reloaded.fingerprint() == trace.fingerprint()
        assert [t["items"] for t in reloaded.tasks] == [["x", "y"], ["y"], []]
        assert reloaded.commits[0]["ops"] == [["remove_node", 0]]

    def test_missing_header_rejected(self):
        with pytest.raises(ObservabilityError, match="wkheader"):
            WorkloadTrace.from_jsonl('{"kind":"wkend"}\n')

    def test_unsupported_version_rejected(self):
        text = self._tiny_trace().to_jsonl().replace('"version":1', '"version":99')
        with pytest.raises(ObservabilityError, match="version"):
            WorkloadTrace.from_jsonl(text)

    def test_truncated_trace_rejected(self):
        lines = self._tiny_trace().to_jsonl().splitlines()
        with pytest.raises(ObservabilityError, match="truncated"):
            WorkloadTrace.from_jsonl("\n".join(lines[:-1]) + "\n")

    def test_tampered_commit_fails_fingerprint(self):
        text = self._tiny_trace().to_jsonl().replace('"children":[2]', '"children":[]')
        with pytest.raises(ReplayMismatchError, match="fingerprint"):
            WorkloadTrace.from_jsonl(text)

    def test_non_dense_task_ids_rejected(self):
        trace = self._tiny_trace()
        trace.tasks[1]["id"] = 7
        with pytest.raises(ObservabilityError, match="dense"):
            WorkloadTrace.from_jsonl(trace.to_jsonl())

    def test_commit_referencing_unknown_task_rejected(self):
        trace = self._tiny_trace()
        trace.commits[0]["id"] = 99
        with pytest.raises(ObservabilityError, match="unknown task"):
            WorkloadTrace.from_jsonl(trace.to_jsonl())

    def test_load_missing_file_is_actionable(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            WorkloadTrace.load(tmp_path / "nope.wktrace")


class TestRecordReplayRoundTrip:
    def test_record_then_replay_commits_identical_work(self, tmp_path):
        path, recorded = _record_boruvka(tmp_path)
        trace = WorkloadTrace.load(path)
        assert len(trace.commits) == recorded.total_committed
        assert trace.aborts == recorded.total_aborted

        replayed = run(RunConfig(workload=f"trace:{path}", seed=SEED))
        assert replayed.total_committed == recorded.total_committed

    def test_replay_complete_flag(self, tmp_path):
        path, _ = _record_boruvka(tmp_path)
        workload = TraceReplayWorkload.load(path)
        workload.make_engine(FixedController(4), seed=1).run()
        assert workload.replay_complete()
        assert workload.unrecorded_commits == 0

    def test_ordered_recording_replays_on_ordered_engine(self, tmp_path):
        path = tmp_path / "des.wktrace"
        recorded = run(RunConfig(workload="des:5", seed=4), record_workload=str(path))
        trace = WorkloadTrace.load(path)
        assert trace.requires_order

        workload = TraceReplayWorkload.load(path)
        assert workload.requires_order
        replayed = workload.make_engine(FixedController(3), seed=2).run()
        assert replayed.total_committed == recorded.total_committed
        assert workload.replay_complete()

    def test_explicit_graph_workload_captures_morphs(self):
        graph = gnm_random(40, 6, seed=3)
        capture = WorkloadCapture(ConsumingGraphWorkload(graph), label="consuming")
        capture.make_engine(FixedController(8), seed=5).run()
        trace = capture.finalize()
        assert len(trace.commits) == 40  # drained
        ops = [op for rec in trace.commits for op in rec["ops"]]
        assert ("remove_node" in {op[0] for op in ops})
        # every commit recorded non-empty conflict items (incident edges)
        # except genuinely isolated end-game nodes
        assert any(rec["items"] for rec in trace.commits)

        replay = TraceReplayWorkload(trace)
        replay.make_engine(FixedController(8), seed=5).run()
        assert replay.replay_complete()

    def test_capture_detaches_morph_hook_on_save(self, tmp_path):
        graph = gnm_random(10, 2, seed=1)
        capture = WorkloadCapture(ConsumingGraphWorkload(graph))
        capture.make_engine(FixedController(2), seed=0).run()
        capture.save(tmp_path / "t.wktrace")
        # hook released: a second capture can install its own
        graph.set_morph_hook(lambda *op: None)
        graph.set_morph_hook(None)


class TestReplayEquivalenceGates:
    """The cross-configuration claims the substrate makes testable."""

    def _trace_path(self, tmp_path):
        path, _ = _record_boruvka(tmp_path)
        return path

    def test_select_backends_replay_byte_identically(self, tmp_path):
        path = self._trace_path(tmp_path)

        def leg(select):
            rec = TraceRecorder()
            run(
                RunConfig(workload=f"trace:{path}", seed=11, select=select),
                recorder=rec,
            )
            return rec.to_jsonl()

        assert leg("workset") == leg("incremental")

    def test_sharded_replay_commits_the_same_work(self, tmp_path):
        path = self._trace_path(tmp_path)
        r1 = run(RunConfig(workload=f"trace:{path}", seed=11, order="sharded", shards=1))
        r2 = run(RunConfig(workload=f"trace:{path}", seed=11, order="sharded", shards=2))
        recorded = WorkloadTrace.load(path)
        assert r1.total_committed == r2.total_committed == len(recorded.commits)

    def test_unordered_vs_relaxed_replay_same_commits(self, tmp_path):
        path = self._trace_path(tmp_path)
        recorded = WorkloadTrace.load(path)
        r1 = run(RunConfig(workload=f"trace:{path}", seed=9, order="unordered"))
        r2 = run(RunConfig(workload=f"trace:{path}", seed=9, order="relaxed:4"))
        assert r1.total_committed == r2.total_committed == len(recorded.commits)


class TestObsIntegration:
    def test_capture_and_replay_emit_provenance_events(self, tmp_path):
        path = tmp_path / "t.wktrace"
        with recording() as rec:
            run(RunConfig(workload="boruvka:30", seed=2), record_workload=str(path))
            run(RunConfig(workload=f"trace:{path}", seed=2))
        kinds = [e.kind for e in rec.events]
        assert "workload_capture" in kinds
        assert "workload_replay" in kinds
        capture_event = next(e for e in rec.events if e.kind == "workload_capture")
        replay_event = next(e for e in rec.events if e.kind == "workload_replay")
        assert capture_event.data["fingerprint"] == replay_event.data["fingerprint"]
        assert capture_event.data["path"] == str(path)

    def test_record_under_sharded_order_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="sharded"):
            run(
                RunConfig(workload="boruvka:20", seed=1, order="sharded", shards=2),
                record_workload=str(tmp_path / "x.wktrace"),
            )
