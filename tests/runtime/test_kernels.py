"""Property tests for the vectorised conflict-resolution kernels.

Three layers of evidence that the fast path implements §2.1's greedy
maximal-independent-set semantics exactly:

* structural invariants on arbitrary (Hypothesis-generated) graphs and
  commit orders — the committed set is independent, and a slot aborts iff
  it has an earlier *committed* neighbour;
* bit-equality with a transparent sequential reference walk, for both the
  CC-graph kernel and the item-lock kernel;
* agreement with the paper's closed forms on ``K_d^n``: exactly one
  commit per touched clique, and Monte-Carlo means within a CI of
  :func:`repro.model.turan.em_kdn`.

Plus cache-coherence checks for the memoised CSR view that feeds the
kernels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.ccgraph import CCGraph
from repro.graph.generators import gnm_random, union_of_cliques
from repro.model.turan import em_kdn
from repro.runtime.kernels import (
    greedy_commit_mask,
    greedy_commit_mask_batch,
    greedy_lock_mask,
)

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------


@st.composite
def graph_and_prefix(draw):
    """Random simple graph (as CSR) plus a duplicate-free commit prefix."""
    n = draw(st.integers(min_value=1, max_value=24))
    max_edges = n * (n - 1) // 2
    pairs = st.tuples(
        st.integers(min_value=0, max_value=n - 1),
        st.integers(min_value=0, max_value=n - 1),
    )
    raw = draw(st.lists(pairs, max_size=min(3 * n, max_edges)))
    edges = sorted({(min(u, v), max(u, v)) for u, v in raw if u != v})
    m = draw(st.integers(min_value=0, max_value=n))
    perm = draw(st.permutations(range(n)))
    prefix = np.asarray(perm[:m], dtype=np.int64)
    return n, edges, prefix


def csr_from_edges(n: int, edges) -> tuple[np.ndarray, np.ndarray]:
    adj = [[] for _ in range(n)]
    for u, v in edges:
        adj[u].append(v)
        adj[v].append(u)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for i, nbrs in enumerate(adj):
        indptr[i + 1] = indptr[i] + len(nbrs)
    indices = np.asarray([v for nbrs in adj for v in sorted(nbrs)], dtype=np.int64)
    return indptr, indices


def reference_commit_mask(edges, prefix: np.ndarray) -> np.ndarray:
    """§2.1 reference: walk the order, commit iff no earlier committed nbr."""
    adj: dict[int, set[int]] = {}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    committed: set[int] = set()
    mask = np.zeros(len(prefix), dtype=bool)
    for slot, node in enumerate(prefix):
        node = int(node)
        if not (adj.get(node, set()) & committed):
            committed.add(node)
            mask[slot] = True
    return mask


# ---------------------------------------------------------------------------
# greedy_commit_mask
# ---------------------------------------------------------------------------


class TestGreedyCommitMask:
    @settings(max_examples=200, deadline=None)
    @given(graph_and_prefix())
    def test_matches_sequential_reference(self, case):
        n, edges, prefix = case
        indptr, indices = csr_from_edges(n, edges)
        fast = greedy_commit_mask(indptr, indices, prefix)
        assert np.array_equal(fast, reference_commit_mask(edges, prefix))

    @settings(max_examples=150, deadline=None)
    @given(graph_and_prefix())
    def test_committed_set_is_independent(self, case):
        n, edges, prefix = case
        indptr, indices = csr_from_edges(n, edges)
        mask = greedy_commit_mask(indptr, indices, prefix)
        committed = {int(v) for v in prefix[mask]}
        for u, v in edges:
            assert not (u in committed and v in committed)

    @settings(max_examples=150, deadline=None)
    @given(graph_and_prefix())
    def test_abort_iff_earlier_committed_neighbor(self, case):
        n, edges, prefix = case
        indptr, indices = csr_from_edges(n, edges)
        mask = greedy_commit_mask(indptr, indices, prefix)
        adj: dict[int, set[int]] = {}
        for u, v in edges:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        for slot, node in enumerate(prefix):
            earlier_committed = {int(v) for v in prefix[:slot][mask[:slot]]}
            blocked = bool(adj.get(int(node), set()) & earlier_committed)
            assert mask[slot] == (not blocked)

    @settings(max_examples=75, deadline=None)
    @given(graph_and_prefix(), st.integers(min_value=1, max_value=4))
    def test_batch_equals_per_row(self, case, reps):
        n, edges, prefix = case
        indptr, indices = csr_from_edges(n, edges)
        rng = np.random.default_rng(0)
        rows = [prefix] + [
            rng.permutation(n)[: len(prefix)].astype(np.int64)
            for _ in range(reps - 1)
        ]
        batch = greedy_commit_mask_batch(indptr, indices, np.stack(rows))
        for row, row_mask in zip(rows, batch):
            assert np.array_equal(row_mask, greedy_commit_mask(indptr, indices, row))

    def test_rejects_duplicates_and_out_of_range(self):
        indptr, indices = csr_from_edges(3, [(0, 1)])
        with pytest.raises(ValueError):
            greedy_commit_mask(indptr, indices, np.array([0, 0]))
        with pytest.raises(ValueError):
            greedy_commit_mask(indptr, indices, np.array([3]))
        with pytest.raises(ValueError):
            greedy_commit_mask(indptr, indices, np.array([[0, 1]]))  # 2-D

    def test_empty_prefix(self):
        indptr, indices = csr_from_edges(2, [(0, 1)])
        assert greedy_commit_mask(indptr, indices, np.array([], dtype=np.int64)).shape == (0,)


# ---------------------------------------------------------------------------
# greedy_lock_mask
# ---------------------------------------------------------------------------


def reference_lock_mask(item_lists) -> np.ndarray:
    held: set[int] = set()
    mask = np.zeros(len(item_lists), dtype=bool)
    for slot, items in enumerate(item_lists):
        if not (set(items) & held):
            held.update(items)
            mask[slot] = True
    return mask


class TestGreedyLockMask:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=15), max_size=5, unique=True
            ),
            max_size=20,
        )
    )
    def test_matches_sequential_reference(self, item_lists):
        flat = [code for items in item_lists for code in items]
        item_ptr = np.zeros(len(item_lists) + 1, dtype=np.int64)
        for i, items in enumerate(item_lists):
            item_ptr[i + 1] = item_ptr[i] + len(items)
        fast = greedy_lock_mask(
            item_ptr, np.asarray(flat, dtype=np.int64), num_items=16
        )
        assert np.array_equal(fast, reference_lock_mask(item_lists))

    def test_itemless_tasks_always_commit(self):
        item_ptr = np.array([0, 0, 1, 1], dtype=np.int64)
        codes = np.array([0], dtype=np.int64)
        assert greedy_lock_mask(item_ptr, codes).tolist() == [True, True, True]

    def test_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            greedy_lock_mask(
                np.array([0, 1], dtype=np.int64),
                np.array([5], dtype=np.int64),
                num_items=3,
            )


# ---------------------------------------------------------------------------
# agreement with the paper's closed forms on K_d^n
# ---------------------------------------------------------------------------


class TestClosedFormAgreement:
    def test_one_commit_per_touched_clique(self):
        # K_5^60: 10 disjoint 6-cliques; any prefix commits exactly its
        # first visitor per touched clique, no matter the order.
        graph = union_of_cliques(10, 6)
        snapshot = graph.csr()
        rng = np.random.default_rng(7)
        for _ in range(25):
            m = int(rng.integers(1, 61))
            prefix = rng.permutation(60)[:m].astype(np.int64)
            mask = greedy_commit_mask(snapshot.indptr, snapshot.indices, prefix)
            touched = {int(v) // 6 for v in prefix}
            assert int(mask.sum()) == len(touched)
            # ...and the committed one is each clique's earliest visitor
            first = {}
            for node in prefix:
                first.setdefault(int(node) // 6, int(node))
            assert {int(v) for v in prefix[mask]} == set(first.values())

    def test_monte_carlo_matches_em_kdn(self):
        # EM_m(K_d^n) closed form (Thm. 3) vs the batched kernel, n=60 d=5
        n, d = 60, 5
        graph = union_of_cliques(n // (d + 1), d + 1)
        snapshot = graph.csr()
        rng = np.random.default_rng(11)
        reps = 3000
        for m in (5, 20, 45):
            base = np.tile(np.arange(n), (reps, 1))
            prefixes = rng.permuted(base, axis=1)[:, :m]
            counts = greedy_commit_mask_batch(
                snapshot.indptr, snapshot.indices, prefixes
            ).sum(axis=1)
            expected = em_kdn(n, d, m)
            stderr = counts.std(ddof=1) / np.sqrt(reps)
            assert abs(counts.mean() - expected) < max(5 * stderr, 1e-9), (
                f"m={m}: MC mean {counts.mean():.4f} vs closed form {expected:.4f}"
            )


# ---------------------------------------------------------------------------
# CSR view caching on CCGraph
# ---------------------------------------------------------------------------


class TestCSRView:
    def _assert_matches_adjacency(self, graph: CCGraph):
        snapshot = graph.csr()
        assert snapshot.num_nodes == len(graph)
        index = snapshot.index_of
        for u in graph.nodes():
            got = {int(snapshot.node_ids[j]) for j in snapshot.neighbors(index[u])}
            assert got == set(graph.neighbors(u))

    def test_snapshot_matches_adjacency(self):
        self._assert_matches_adjacency(gnm_random(50, 6, seed=3))

    def test_cached_until_mutation(self):
        graph = gnm_random(30, 4, seed=1)
        first = graph.csr()
        assert graph.csr() is first  # memoised while topology is unchanged
        v0 = graph.version
        a, b = graph.nodes()[0], graph.nodes()[1]
        if graph.has_edge(a, b):
            graph.remove_edge(a, b)
        else:
            graph.add_edge(a, b)
        assert graph.version > v0
        second = graph.csr()
        assert second is not first
        self._assert_matches_adjacency(graph)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=25))
    def test_random_mutation_sequences(self, ops):
        graph = gnm_random(12, 3, seed=9)
        rng = np.random.default_rng(42)
        for op in ops:
            nodes = graph.nodes()
            if op == 0:
                graph.add_node()
            elif op == 1 and len(nodes) >= 2:
                u, v = rng.choice(nodes, size=2, replace=False)
                if not graph.has_edge(int(u), int(v)):
                    graph.add_edge(int(u), int(v))
            elif op == 2 and graph.num_edges > 0:
                u, v = graph.edges()[int(rng.integers(graph.num_edges))]
                graph.remove_edge(u, v)
            elif op == 3 and nodes:
                graph.remove_node(int(rng.choice(nodes)))
            self._assert_matches_adjacency(graph)
