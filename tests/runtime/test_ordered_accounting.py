"""Rollback accounting for the ordered engine: barrier/horizon invariants.

These pin down the bookkeeping of :class:`OrderedBatchOutcome` — where the
barrier sits, how the horizon shrinks as commits create new work, and that
the engine's running abort totals stay consistent with the per-run stats.
"""

import math

from repro.control.fixed import FixedController
from repro.runtime.ordered import OrderedBatchOutcome, OrderedEngine, PriorityWorkset
from repro.runtime.task import CallbackOperator, Task

from tests.runtime.test_ordered import make_engine


def resolve_one(eng):
    """Take one full batch and resolve it, returning the raw outcome."""
    batch = eng.workset.take_earliest(len(eng.workset))
    return eng._resolve(batch)


class TestBarrier:
    def test_clean_batch_has_infinite_barrier_and_horizon(self):
        eng = make_engine([("a", 1), ("b", 2)], {"a": {1}, "b": {2}})
        out = resolve_one(eng)
        assert math.isinf(out.barrier) and math.isinf(out.horizon)
        assert len(out.committed) == 2

    def test_barrier_is_earliest_conflict_abort_priority(self):
        eng = make_engine(
            [("a", 1), ("b", 2), ("c", 3), ("d", 4)],
            {"a": {"x"}, "b": {"y"}, "c": {"x"}, "d": {"y"}},
        )
        out = resolve_one(eng)
        # c (prio 3) is the earliest conflict abort; d conflicts too but the
        # barrier reports the earliest, and nothing later than 3 commits.
        assert out.barrier == 3.0
        assert [p for p, _ in out.committed] == [1.0, 2.0]
        assert all(p >= out.barrier for p, _ in out.order_aborted)

    def test_survivor_beyond_barrier_is_order_aborted(self):
        eng = make_engine(
            [("a", 1), ("b", 2), ("c", 3)],
            {"a": {"x"}, "b": {"x"}, "c": {"y"}},
        )
        out = resolve_one(eng)
        assert out.barrier == 2.0
        assert [p for p, _ in out.conflict_aborted] == [2.0]
        assert [p for p, _ in out.order_aborted] == [3.0]
        assert [p for p, _ in out.committed] == [1.0]


class TestHorizon:
    def test_horizon_shrinks_to_created_priority(self):
        eng = make_engine(
            [("a", 1), ("c", 3)],
            {"a": {"x"}, "c": {"y"}},
            children={"a": [("child", 1.5)]},
        )
        out = resolve_one(eng)
        assert math.isinf(out.barrier)  # no conflicts at all
        assert out.horizon == 1.5
        assert [p for p, _ in out.order_aborted] == [3.0]

    def test_horizon_chains_across_commits(self):
        """Each commit can pull the horizon further in; later survivors see
        the tightest value produced so far."""
        eng = make_engine(
            [("a", 1), ("b", 2), ("d", 2.4), ("c", 3)],
            {"a": {"w"}, "b": {"x"}, "d": {"y"}, "c": {"z"}},
            children={"a": [("p", 5.0)], "b": [("q", 2.5)]},
        )
        out = resolve_one(eng)
        # a commits (horizon 5.0), b commits (horizon 2.5), d at 2.4 still
        # fits, c at 3 > 2.5 is order-aborted.
        assert [p for p, _ in out.committed] == [1.0, 2.0, 2.4]
        assert [p for p, _ in out.order_aborted] == [3.0]
        assert out.horizon == 2.5

    def test_horizon_starts_at_barrier(self):
        eng = make_engine(
            [("a", 1), ("b", 2), ("c", 2.2), ("d", 2.8)],
            {"a": {"x"}, "b": {"x"}, "c": {"y"}, "d": {"z"}},
            children={"c": [("late", 9.0)]},
        )
        out = resolve_one(eng)
        # barrier at b's priority 2; created work at 9 never widens it.
        assert out.barrier == 2.0
        assert out.horizon == 2.0
        assert [p for p, _ in out.committed] == [1.0]
        assert sorted(p for p, _ in out.order_aborted) == [2.2, 2.8]


class TestRollbackAccounting:
    def test_abort_totals_match_run_result(self):
        neigh = {i: {i % 4} for i in range(40)}
        eng = make_engine(
            [(i, float(i % 5) + i / 100.0) for i in range(40)], neigh, m=12
        )
        res = eng.run(max_steps=500)
        assert eng.conflict_aborts_total + eng.order_aborts_total == res.total_aborted
        assert res.total_committed == 40

    def test_aborted_tasks_reenqueued_at_same_priority(self):
        eng = make_engine(
            [("a", 1), ("b", 2), ("c", 3)],
            {"a": {"x"}, "b": {"x"}, "c": {"y"}},
        )
        eng.step()
        # b (conflict) and c (order) both go back at their own priorities.
        assert len(eng.workset) == 2
        assert eng.workset.peek_priority() == 2.0
        remaining = eng.workset.take_earliest(2)
        assert [(p, t.payload) for p, t in remaining] == [(2.0, "b"), (3.0, "c")]

    def test_every_launch_is_accounted_exactly_once(self):
        eng = make_engine(
            [(i, float(i)) for i in range(12)],
            {i: {i % 3} for i in range(12)},
            m=12,
        )
        out = resolve_one(eng)
        assert (
            len(out.committed) + len(out.conflict_aborted) + len(out.order_aborted)
            == out.launched
            == 12
        )
        seen = {t.uid for _, t in out.committed}
        seen |= {t.uid for _, t in out.conflict_aborted}
        seen |= {t.uid for _, t in out.order_aborted}
        assert len(seen) == 12  # no task lands in two buckets

    def test_outcome_defaults_are_infinite(self):
        out = OrderedBatchOutcome([], [], [])
        assert math.isinf(out.barrier) and math.isinf(out.horizon)
        assert out.launched == 0 and out.conflict_ratio == 0.0

    def test_trace_records_barrier_and_horizon(self):
        from repro.obs import TraceRecorder

        rec = TraceRecorder()
        ws = PriorityWorkset()
        for payload, prio in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            ws.add(Task(payload=payload), prio)
        op = CallbackOperator(
            neighborhood=lambda t: {"x"} if t.payload in ("a", "b") else {"y"},
            apply=lambda t: [],
        )
        eng = OrderedEngine(
            workset=ws,
            operator=op,
            controller=FixedController(3),
            priority_of=lambda t: 0.0,
            seed=0,
            recorder=rec,
        )
        eng.step()
        steps = [e for e in rec.events if e.kind == "step"]
        assert steps[0].data["barrier"] == 2.0
        assert steps[0].data["horizon"] == 2.0
        assert steps[0].data["conflict_aborted"] == 1
        assert steps[0].data["order_aborted"] == 1
