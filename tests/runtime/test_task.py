"""Tests for repro.runtime.task."""

from repro.runtime.task import CallbackOperator, Task


class TestTask:
    def test_uids_unique_and_increasing(self):
        a, b = Task(payload=1), Task(payload=1)
        assert a.uid != b.uid
        assert b.uid > a.uid

    def test_payload_opaque(self):
        t = Task(payload={"anything": [1, 2]})
        assert t.payload == {"anything": [1, 2]}

    def test_repr(self):
        t = Task(payload="x")
        assert "x" in repr(t) and str(t.uid) in repr(t)


class TestCallbackOperator:
    def test_delegation(self):
        calls = []
        op = CallbackOperator(
            neighborhood=lambda t: {t.payload},
            apply=lambda t: [Task(payload=t.payload + 1)],
            on_abort=lambda t: calls.append(t.uid),
        )
        t = Task(payload=5)
        assert set(op.neighborhood(t)) == {5}
        out = op.apply(t)
        assert len(out) == 1 and out[0].payload == 6
        op.on_abort(t)
        assert calls == [t.uid]

    def test_on_abort_default_noop(self):
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        op.on_abort(Task(payload=None))  # must not raise
