"""Differential suite: the fast engine path must equal the reference path.

The correctness contract of the vectorised kernels
(:mod:`repro.runtime.kernels`) is *bit-identity*: for any seeded workload
and any controller, ``engine="fast"`` must produce exactly the commits,
aborts, step stats, and observability trace of ``engine="reference"``.
These tests enforce that contract across:

* workload shapes — stationary gnm replay, draining gnm, draining clique
  unions, and morphing (regenerating) graphs;
* every controller in :mod:`repro.control` with a standard constructor;
* both conflict policies (explicit CC graph and item locks) and the
  ordered engine.
"""

from __future__ import annotations

import pytest

from repro.control import (
    AIMDController,
    AStealController,
    BisectionController,
    FixedController,
    HybridController,
    NoiseAdaptiveHybridController,
    OracleController,
    PIController,
    ProbingHybridController,
    RecurrenceAController,
    RecurrenceBController,
)
from repro.errors import RuntimeEngineError
from repro.graph.generators import gnm_random, union_of_cliques
from repro.obs import TraceRecorder
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.engine import OptimisticEngine, resolve_engine_mode
from repro.runtime.task import Operator, Task
from repro.runtime.workloads import (
    ConsumingGraphWorkload,
    RegeneratingGraphWorkload,
    ReplayGraphWorkload,
)
from repro.runtime.workset import RandomWorkset

N = 120
SEED = 2011
MAX_STEPS = 35

WORKLOADS = {
    "gnm_replay": lambda select=None: ReplayGraphWorkload(
        gnm_random(N, 8, seed=SEED), select=select
    ),
    "gnm_consuming": lambda select=None: ConsumingGraphWorkload(
        gnm_random(N, 8, seed=SEED), select=select
    ),
    "clique_consuming": lambda select=None: ConsumingGraphWorkload(
        union_of_cliques(20, 6), select=select
    ),
    "morphing": lambda select=None: RegeneratingGraphWorkload(
        gnm_random(N, 6, seed=SEED), target_degree=6, seed=7, select=select
    ),
}

CONTROLLERS = {
    "fixed": lambda: FixedController(12),
    "hybrid": lambda: HybridController(0.25, m_max=64),
    "aimd": lambda: AIMDController(0.25, m_max=64),
    "asteal": lambda: AStealController(0.25, m_max=64),
    "bisection": lambda: BisectionController(0.25, m_max=64),
    "pi": lambda: PIController(0.25, m_max=64),
    "recurrence_a": lambda: RecurrenceAController(0.25, m_max=64),
    "recurrence_b": lambda: RecurrenceBController(0.25, m_max=64),
    "adaptive": lambda: NoiseAdaptiveHybridController(0.25, m_max=64),
    "probing": lambda: ProbingHybridController(0.25, n=N),
    "oracle": lambda: OracleController(10, m_max=64),
}


def _run(workload_key: str, controller_key: str, mode: str, select: "str | None" = None):
    """One seeded run; returns (jsonl trace, step-stat dicts)."""
    recorder = TraceRecorder()
    workload = WORKLOADS[workload_key](select=select)
    controller = CONTROLLERS[controller_key]()
    engine = workload.build_engine(
        controller, seed=SEED, recorder=recorder, engine=mode
    )
    engine.run(max_steps=MAX_STEPS)
    return recorder.to_jsonl(), [s.as_dict() for s in engine.result.steps]


class TestUnorderedDifferential:
    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("controller_key", sorted(CONTROLLERS))
    def test_fast_equals_reference(self, workload_key, controller_key):
        ref_trace, ref_steps = _run(workload_key, controller_key, "reference")
        fast_trace, fast_steps = _run(workload_key, controller_key, "fast")
        assert fast_steps == ref_steps
        assert fast_trace == ref_trace  # byte-identical obs traces

    def test_reference_run_not_degenerate(self):
        # the suite only means something if conflicts actually happen
        _, steps = _run("gnm_consuming", "fixed", "reference")
        assert sum(s["aborted"] for s in steps) > 0
        assert sum(s["committed"] for s in steps) > 0


class TestIncrementalSelectDifferential:
    """The incremental selection backend must be invisible in every trace.

    ``select="incremental"`` swaps the work-set onto :class:`ActiveSet`
    and the conflict policy onto memoised CSR deltas; byte-identical
    observability traces against the reference backend are the hard gate.
    """

    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("mode", ["reference", "fast"])
    def test_incremental_equals_workset(self, workload_key, mode):
        ref_trace, ref_steps = _run(workload_key, "hybrid", mode, select="workset")
        inc_trace, inc_steps = _run(workload_key, "hybrid", mode, select="incremental")
        assert inc_steps == ref_steps
        assert inc_trace == ref_trace  # byte-identical obs traces

    @pytest.mark.parametrize("controller_key", sorted(CONTROLLERS))
    def test_all_controllers_on_morphing_graph(self, controller_key):
        ref_trace, ref_steps = _run("morphing", controller_key, "fast", select="workset")
        inc_trace, inc_steps = _run(
            "morphing", controller_key, "fast", select="incremental"
        )
        assert inc_steps == ref_steps
        assert inc_trace == ref_trace


class TestSelectBackendSelection:
    def test_unknown_backend_rejected(self):
        from repro.runtime.core import resolve_select_backend

        with pytest.raises(RuntimeEngineError):
            resolve_select_backend("quantum")

    def test_env_var_default(self, monkeypatch):
        from repro.runtime.core import resolve_select_backend

        monkeypatch.delenv("REPRO_SELECT", raising=False)
        assert resolve_select_backend(None) == "workset"
        monkeypatch.setenv("REPRO_SELECT", "incremental")
        assert resolve_select_backend(None) == "incremental"
        assert resolve_select_backend("workset") == "workset"  # explicit wins

    def test_workload_builds_active_set_from_env(self, monkeypatch):
        from repro.runtime.active_set import ActiveSet

        monkeypatch.setenv("REPRO_SELECT", "incremental")
        workload = ReplayGraphWorkload(gnm_random(20, 2, seed=0))
        assert isinstance(workload.workset, ActiveSet)
        monkeypatch.setenv("REPRO_SELECT", "workset")
        workload = ReplayGraphWorkload(gnm_random(20, 2, seed=0))
        assert isinstance(workload.workset, RandomWorkset)

    def test_select_and_workset_are_exclusive(self):
        with pytest.raises(RuntimeEngineError):
            ReplayGraphWorkload(
                gnm_random(20, 2, seed=0),
                select="incremental",
                workset=RandomWorkset(),
            )

    def test_api_run_honours_config_select(self):
        from repro import RunConfig
        from repro.api import run

        def result(select):
            res = run(
                RunConfig(workload="consuming", seed=5, max_steps=30, select=select),
                graph=gnm_random(80, 6, seed=3),
            )
            return [s.as_dict() for s in res.steps]

        assert result("incremental") == result("workset")

    def test_duck_typed_operator_without_apply_batch(self, monkeypatch):
        # for_each accepts any object with neighborhood/apply — the
        # batched commit path must fall back to the per-task walk for
        # operators that define neither apply_batch nor on_abort
        from repro.api import for_each

        class DuckOp:
            def neighborhood(self, task):
                return [task.payload % 7]  # collisions force aborts

            def apply(self, task):
                return [Task(payload=task.payload + 100)] if task.payload < 50 else []

            def on_abort(self, task):
                pass

        def trace(select):
            monkeypatch.setenv("REPRO_SELECT", select)
            res = for_each(range(50), DuckOp(), max_steps=400, seed=11)
            return [s.as_dict() for s in res.steps]

        assert trace("incremental") == trace("workset")

    def test_duck_typed_operator_without_on_abort(self, monkeypatch):
        # no on_abort and no aborts (empty neighbourhoods): both the
        # commit fallback and the abort-override check must tolerate it
        from repro.api import for_each

        class MinimalOp:
            def neighborhood(self, task):
                return []

            def apply(self, task):
                return []

        monkeypatch.setenv("REPRO_SELECT", "incremental")
        res = for_each(range(30), MinimalOp(), max_steps=100, seed=2)
        assert res.total_committed == 30

    def test_registry_rejects_unknown_select_name(self):
        from repro import RunConfig
        from repro.api import run
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            run(
                RunConfig(workload="consuming", select="quantum"),
                graph=gnm_random(10, 2, seed=0),
            )


class TestItemLockDifferential:
    class _ItemOperator(Operator):
        """Tasks lock overlapping item windows: payload i locks {i..i+3}."""

        def neighborhood(self, task):
            return [task.payload + k for k in range(4)]

        def apply(self, task):
            return []

    def _run(self, mode: str):
        workset = RandomWorkset()
        for i in range(80):
            workset.add(Task(payload=3 * i))  # windows overlap neighbours
        engine = OptimisticEngine(
            workset=workset,
            operator=self._ItemOperator(),
            policy=ItemLockPolicy(),
            controller=FixedController(16),
            seed=5,
            engine=mode,
        )
        engine.run(max_steps=25)
        return [s.as_dict() for s in engine.result.steps]

    def test_fast_equals_reference(self):
        assert self._run("fast") == self._run("reference")


class TestOrderedDifferential:
    @pytest.mark.parametrize("controller_key", ["fixed", "hybrid", "aimd"])
    def test_fast_equals_reference(self, controller_key):
        from repro.apps.des import DiscreteEventSimulation, QueueingNetwork

        network = QueueingNetwork(15, avg_degree=3.0, seed=3)

        def run(mode):
            sim = DiscreteEventSimulation(network, num_jobs=25, end_time=12.0, seed=5)
            engine = sim.build_engine(
                CONTROLLERS[controller_key](), seed=9, engine=mode
            )
            result = engine.run(max_steps=10**5)
            return sim.history, [s.as_dict() for s in result.steps]

        ref_history, ref_steps = run("reference")
        fast_history, fast_steps = run("fast")
        assert fast_steps == ref_steps
        assert fast_history == ref_history


class TestEngineModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(RuntimeEngineError):
            resolve_engine_mode("turbo")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_mode(None) == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert resolve_engine_mode(None) == "fast"
        assert resolve_engine_mode("reference") == "reference"  # explicit wins

    def test_engine_records_mode(self):
        workload = ReplayGraphWorkload(gnm_random(20, 2, seed=0))
        engine = workload.build_engine(FixedController(4), seed=0, engine="fast")
        assert engine.engine_mode == "fast"
