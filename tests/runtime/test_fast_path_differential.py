"""Differential suite: the fast engine path must equal the reference path.

The correctness contract of the vectorised kernels
(:mod:`repro.runtime.kernels`) is *bit-identity*: for any seeded workload
and any controller, ``engine="fast"`` must produce exactly the commits,
aborts, step stats, and observability trace of ``engine="reference"``.
These tests enforce that contract across:

* workload shapes — stationary gnm replay, draining gnm, draining clique
  unions, and morphing (regenerating) graphs;
* every controller in :mod:`repro.control` with a standard constructor;
* both conflict policies (explicit CC graph and item locks) and the
  ordered engine.
"""

from __future__ import annotations

import pytest

from repro.control import (
    AIMDController,
    AStealController,
    BisectionController,
    FixedController,
    HybridController,
    NoiseAdaptiveHybridController,
    OracleController,
    PIController,
    ProbingHybridController,
    RecurrenceAController,
    RecurrenceBController,
)
from repro.errors import RuntimeEngineError
from repro.graph.generators import gnm_random, union_of_cliques
from repro.obs import TraceRecorder
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.engine import OptimisticEngine, resolve_engine_mode
from repro.runtime.task import Operator, Task
from repro.runtime.workloads import (
    ConsumingGraphWorkload,
    RegeneratingGraphWorkload,
    ReplayGraphWorkload,
)
from repro.runtime.workset import RandomWorkset

N = 120
SEED = 2011
MAX_STEPS = 35

WORKLOADS = {
    "gnm_replay": lambda select=None: ReplayGraphWorkload(
        gnm_random(N, 8, seed=SEED), select=select
    ),
    "gnm_consuming": lambda select=None: ConsumingGraphWorkload(
        gnm_random(N, 8, seed=SEED), select=select
    ),
    "clique_consuming": lambda select=None: ConsumingGraphWorkload(
        union_of_cliques(20, 6), select=select
    ),
    "morphing": lambda select=None: RegeneratingGraphWorkload(
        gnm_random(N, 6, seed=SEED), target_degree=6, seed=7, select=select
    ),
}

CONTROLLERS = {
    "fixed": lambda: FixedController(12),
    "hybrid": lambda: HybridController(0.25, m_max=64),
    "aimd": lambda: AIMDController(0.25, m_max=64),
    "asteal": lambda: AStealController(0.25, m_max=64),
    "bisection": lambda: BisectionController(0.25, m_max=64),
    "pi": lambda: PIController(0.25, m_max=64),
    "recurrence_a": lambda: RecurrenceAController(0.25, m_max=64),
    "recurrence_b": lambda: RecurrenceBController(0.25, m_max=64),
    "adaptive": lambda: NoiseAdaptiveHybridController(0.25, m_max=64),
    "probing": lambda: ProbingHybridController(0.25, n=N),
    "oracle": lambda: OracleController(10, m_max=64),
}


def _run(workload_key: str, controller_key: str, mode: str, select: "str | None" = None):
    """One seeded run; returns (jsonl trace, step-stat dicts)."""
    recorder = TraceRecorder()
    workload = WORKLOADS[workload_key](select=select)
    controller = CONTROLLERS[controller_key]()
    engine = workload.build_engine(
        controller, seed=SEED, recorder=recorder, engine=mode
    )
    engine.run(max_steps=MAX_STEPS)
    return recorder.to_jsonl(), [s.as_dict() for s in engine.result.steps]


class TestUnorderedDifferential:
    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("controller_key", sorted(CONTROLLERS))
    def test_fast_equals_reference(self, workload_key, controller_key):
        ref_trace, ref_steps = _run(workload_key, controller_key, "reference")
        fast_trace, fast_steps = _run(workload_key, controller_key, "fast")
        assert fast_steps == ref_steps
        assert fast_trace == ref_trace  # byte-identical obs traces

    def test_reference_run_not_degenerate(self):
        # the suite only means something if conflicts actually happen
        _, steps = _run("gnm_consuming", "fixed", "reference")
        assert sum(s["aborted"] for s in steps) > 0
        assert sum(s["committed"] for s in steps) > 0


class TestIncrementalSelectDifferential:
    """The incremental selection backend must be invisible in every trace.

    ``select="incremental"`` swaps the work-set onto :class:`ActiveSet`
    and the conflict policy onto memoised CSR deltas; byte-identical
    observability traces against the reference backend are the hard gate.
    """

    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("mode", ["reference", "fast"])
    def test_incremental_equals_workset(self, workload_key, mode):
        ref_trace, ref_steps = _run(workload_key, "hybrid", mode, select="workset")
        inc_trace, inc_steps = _run(workload_key, "hybrid", mode, select="incremental")
        assert inc_steps == ref_steps
        assert inc_trace == ref_trace  # byte-identical obs traces

    @pytest.mark.parametrize("controller_key", sorted(CONTROLLERS))
    def test_all_controllers_on_morphing_graph(self, controller_key):
        ref_trace, ref_steps = _run("morphing", controller_key, "fast", select="workset")
        inc_trace, inc_steps = _run(
            "morphing", controller_key, "fast", select="incremental"
        )
        assert inc_steps == ref_steps
        assert inc_trace == ref_trace


class TestSelectBackendSelection:
    def test_unknown_backend_rejected(self):
        from repro.runtime.core import resolve_select_backend

        with pytest.raises(RuntimeEngineError):
            resolve_select_backend("quantum")

    def test_env_var_default(self, monkeypatch):
        from repro.runtime.core import resolve_select_backend

        monkeypatch.delenv("REPRO_SELECT", raising=False)
        assert resolve_select_backend(None) == "workset"
        monkeypatch.setenv("REPRO_SELECT", "incremental")
        assert resolve_select_backend(None) == "incremental"
        assert resolve_select_backend("workset") == "workset"  # explicit wins

    def test_workload_builds_active_set_from_env(self, monkeypatch):
        from repro.runtime.active_set import ActiveSet

        monkeypatch.setenv("REPRO_SELECT", "incremental")
        workload = ReplayGraphWorkload(gnm_random(20, 2, seed=0))
        assert isinstance(workload.workset, ActiveSet)
        monkeypatch.setenv("REPRO_SELECT", "workset")
        workload = ReplayGraphWorkload(gnm_random(20, 2, seed=0))
        assert isinstance(workload.workset, RandomWorkset)

    def test_select_and_workset_are_exclusive(self):
        with pytest.raises(RuntimeEngineError):
            ReplayGraphWorkload(
                gnm_random(20, 2, seed=0),
                select="incremental",
                workset=RandomWorkset(),
            )

    def test_api_run_honours_config_select(self):
        from repro import RunConfig
        from repro.api import run

        def result(select):
            res = run(
                RunConfig(workload="consuming", seed=5, max_steps=30, select=select),
                graph=gnm_random(80, 6, seed=3),
            )
            return [s.as_dict() for s in res.steps]

        assert result("incremental") == result("workset")

    def test_duck_typed_operator_without_apply_batch(self, monkeypatch):
        # for_each accepts any object with neighborhood/apply — the
        # batched commit path must fall back to the per-task walk for
        # operators that define neither apply_batch nor on_abort
        from repro.api import for_each

        class DuckOp:
            def neighborhood(self, task):
                return [task.payload % 7]  # collisions force aborts

            def apply(self, task):
                return [Task(payload=task.payload + 100)] if task.payload < 50 else []

            def on_abort(self, task):
                pass

        def trace(select):
            monkeypatch.setenv("REPRO_SELECT", select)
            res = for_each(range(50), DuckOp(), max_steps=400, seed=11)
            return [s.as_dict() for s in res.steps]

        assert trace("incremental") == trace("workset")

    def test_duck_typed_operator_without_on_abort(self, monkeypatch):
        # no on_abort and no aborts (empty neighbourhoods): both the
        # commit fallback and the abort-override check must tolerate it
        from repro.api import for_each

        class MinimalOp:
            def neighborhood(self, task):
                return []

            def apply(self, task):
                return []

        monkeypatch.setenv("REPRO_SELECT", "incremental")
        res = for_each(range(30), MinimalOp(), max_steps=100, seed=2)
        assert res.total_committed == 30

    def test_registry_rejects_unknown_select_name(self):
        from repro import RunConfig
        from repro.api import run
        from repro.errors import RegistryError

        with pytest.raises(RegistryError):
            run(
                RunConfig(workload="consuming", select="quantum"),
                graph=gnm_random(10, 2, seed=0),
            )


class TestItemLockDifferential:
    class _ItemOperator(Operator):
        """Tasks lock overlapping item windows: payload i locks {i..i+3}."""

        def neighborhood(self, task):
            return [task.payload + k for k in range(4)]

        def apply(self, task):
            return []

    def _run(self, mode: str):
        workset = RandomWorkset()
        for i in range(80):
            workset.add(Task(payload=3 * i))  # windows overlap neighbours
        engine = OptimisticEngine(
            workset=workset,
            operator=self._ItemOperator(),
            policy=ItemLockPolicy(),
            controller=FixedController(16),
            seed=5,
            engine=mode,
        )
        engine.run(max_steps=25)
        return [s.as_dict() for s in engine.result.steps]

    def test_fast_equals_reference(self):
        assert self._run("fast") == self._run("reference")


class TestOrderedDifferential:
    @pytest.mark.parametrize("controller_key", ["fixed", "hybrid", "aimd"])
    def test_fast_equals_reference(self, controller_key):
        from repro.apps.des import DiscreteEventSimulation, QueueingNetwork

        network = QueueingNetwork(15, avg_degree=3.0, seed=3)

        def run(mode):
            sim = DiscreteEventSimulation(network, num_jobs=25, end_time=12.0, seed=5)
            engine = sim.build_engine(
                CONTROLLERS[controller_key](), seed=9, engine=mode
            )
            result = engine.run(max_steps=10**5)
            return sim.history, [s.as_dict() for s in result.steps]

        ref_history, ref_steps = run("reference")
        fast_history, fast_steps = run("fast")
        assert fast_steps == ref_steps
        assert fast_history == ref_history


class TestRelaxedDifferential:
    """Relaxed/async commit orders obey the same bit-identity contract."""

    ORDERS = ["ordered", "relaxed:1", "relaxed:4", "async", "async:4"]

    @staticmethod
    def _ordered_run(order: str, mode: str, workload: str = "gnm_consuming"):
        from repro import RunConfig
        from repro.api import run

        graphs = {
            "gnm_replay": lambda: gnm_random(N, 8, seed=SEED),
            "gnm_consuming": lambda: gnm_random(N, 8, seed=SEED),
            "clique_consuming": lambda: union_of_cliques(20, 6),
        }
        recorder = TraceRecorder()
        run(
            RunConfig(
                workload="replay" if workload == "gnm_replay" else "consuming",
                rho=0.25,
                order=order,
                max_steps=MAX_STEPS,
                engine=mode,
            ),
            graph=graphs[workload](),
            seed=SEED,
            recorder=recorder,
        )
        return recorder.to_jsonl()

    @pytest.mark.parametrize(
        "workload_key", ["gnm_replay", "gnm_consuming", "clique_consuming"]
    )
    @pytest.mark.parametrize("order", ORDERS)
    def test_fast_equals_reference(self, order, workload_key):
        ref = self._ordered_run(order, "reference", workload_key)
        fast = self._ordered_run(order, "fast", workload_key)
        assert fast == ref  # byte-identical obs traces

    @pytest.mark.parametrize("mode", ["reference", "fast"])
    def test_depth_one_equals_strict_ordered(self, mode):
        assert self._ordered_run("relaxed:1", mode) == self._ordered_run(
            "ordered", mode
        )

    def test_async_trace_schema_matches_unordered(self):
        # async runs must be drop-in for every unordered trace consumer:
        # same event kinds and same step/run_end payload fields (plus the
        # policy's own order_decision channel)
        import json

        unordered = [
            json.loads(line)
            for line in self._ordered_run("unordered", "reference").splitlines()
            if not line.startswith('{"dropped"')
        ]
        asynchronous = [
            json.loads(line)
            for line in self._ordered_run("async:4", "reference").splitlines()
            if not line.startswith('{"dropped"')
        ]

        def fields(events, kind):
            return {frozenset(e["data"]) for e in events if e["kind"] == kind}

        for kind in ("run_start", "select", "step", "run_end"):
            assert fields(asynchronous, kind) == fields(unordered, kind)
        extra = {e["kind"] for e in asynchronous} - {e["kind"] for e in unordered}
        assert extra <= {"order_decision"}


class TestEngineModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(RuntimeEngineError):
            resolve_engine_mode("turbo")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_mode(None) == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert resolve_engine_mode(None) == "fast"
        assert resolve_engine_mode("reference") == "reference"  # explicit wins

    def test_engine_records_mode(self):
        workload = ReplayGraphWorkload(gnm_random(20, 2, seed=0))
        engine = workload.build_engine(FixedController(4), seed=0, engine="fast")
        assert engine.engine_mode == "fast"
