"""Differential suite: the fast engine path must equal the reference path.

The correctness contract of the vectorised kernels
(:mod:`repro.runtime.kernels`) is *bit-identity*: for any seeded workload
and any controller, ``engine="fast"`` must produce exactly the commits,
aborts, step stats, and observability trace of ``engine="reference"``.
These tests enforce that contract across:

* workload shapes — stationary gnm replay, draining gnm, draining clique
  unions, and morphing (regenerating) graphs;
* every controller in :mod:`repro.control` with a standard constructor;
* both conflict policies (explicit CC graph and item locks) and the
  ordered engine.
"""

from __future__ import annotations

import pytest

from repro.control import (
    AIMDController,
    AStealController,
    BisectionController,
    FixedController,
    HybridController,
    NoiseAdaptiveHybridController,
    OracleController,
    PIController,
    ProbingHybridController,
    RecurrenceAController,
    RecurrenceBController,
)
from repro.errors import RuntimeEngineError
from repro.graph.generators import gnm_random, union_of_cliques
from repro.obs import TraceRecorder
from repro.runtime.conflict import ItemLockPolicy
from repro.runtime.engine import OptimisticEngine, resolve_engine_mode
from repro.runtime.task import Operator, Task
from repro.runtime.workloads import (
    ConsumingGraphWorkload,
    RegeneratingGraphWorkload,
    ReplayGraphWorkload,
)
from repro.runtime.workset import RandomWorkset

N = 120
SEED = 2011
MAX_STEPS = 35

WORKLOADS = {
    "gnm_replay": lambda: ReplayGraphWorkload(gnm_random(N, 8, seed=SEED)),
    "gnm_consuming": lambda: ConsumingGraphWorkload(gnm_random(N, 8, seed=SEED)),
    "clique_consuming": lambda: ConsumingGraphWorkload(union_of_cliques(20, 6)),
    "morphing": lambda: RegeneratingGraphWorkload(
        gnm_random(N, 6, seed=SEED), target_degree=6, seed=7
    ),
}

CONTROLLERS = {
    "fixed": lambda: FixedController(12),
    "hybrid": lambda: HybridController(0.25, m_max=64),
    "aimd": lambda: AIMDController(0.25, m_max=64),
    "asteal": lambda: AStealController(0.25, m_max=64),
    "bisection": lambda: BisectionController(0.25, m_max=64),
    "pi": lambda: PIController(0.25, m_max=64),
    "recurrence_a": lambda: RecurrenceAController(0.25, m_max=64),
    "recurrence_b": lambda: RecurrenceBController(0.25, m_max=64),
    "adaptive": lambda: NoiseAdaptiveHybridController(0.25, m_max=64),
    "probing": lambda: ProbingHybridController(0.25, n=N),
    "oracle": lambda: OracleController(10, m_max=64),
}


def _run(workload_key: str, controller_key: str, mode: str):
    """One seeded run; returns (jsonl trace, step-stat dicts)."""
    recorder = TraceRecorder()
    workload = WORKLOADS[workload_key]()
    controller = CONTROLLERS[controller_key]()
    engine = workload.build_engine(
        controller, seed=SEED, recorder=recorder, engine=mode
    )
    engine.run(max_steps=MAX_STEPS)
    return recorder.to_jsonl(), [s.as_dict() for s in engine.result.steps]


class TestUnorderedDifferential:
    @pytest.mark.parametrize("workload_key", sorted(WORKLOADS))
    @pytest.mark.parametrize("controller_key", sorted(CONTROLLERS))
    def test_fast_equals_reference(self, workload_key, controller_key):
        ref_trace, ref_steps = _run(workload_key, controller_key, "reference")
        fast_trace, fast_steps = _run(workload_key, controller_key, "fast")
        assert fast_steps == ref_steps
        assert fast_trace == ref_trace  # byte-identical obs traces

    def test_reference_run_not_degenerate(self):
        # the suite only means something if conflicts actually happen
        _, steps = _run("gnm_consuming", "fixed", "reference")
        assert sum(s["aborted"] for s in steps) > 0
        assert sum(s["committed"] for s in steps) > 0


class TestItemLockDifferential:
    class _ItemOperator(Operator):
        """Tasks lock overlapping item windows: payload i locks {i..i+3}."""

        def neighborhood(self, task):
            return [task.payload + k for k in range(4)]

        def apply(self, task):
            return []

    def _run(self, mode: str):
        workset = RandomWorkset()
        for i in range(80):
            workset.add(Task(payload=3 * i))  # windows overlap neighbours
        engine = OptimisticEngine(
            workset=workset,
            operator=self._ItemOperator(),
            policy=ItemLockPolicy(),
            controller=FixedController(16),
            seed=5,
            engine=mode,
        )
        engine.run(max_steps=25)
        return [s.as_dict() for s in engine.result.steps]

    def test_fast_equals_reference(self):
        assert self._run("fast") == self._run("reference")


class TestOrderedDifferential:
    @pytest.mark.parametrize("controller_key", ["fixed", "hybrid", "aimd"])
    def test_fast_equals_reference(self, controller_key):
        from repro.apps.des import DiscreteEventSimulation, QueueingNetwork

        network = QueueingNetwork(15, avg_degree=3.0, seed=3)

        def run(mode):
            sim = DiscreteEventSimulation(network, num_jobs=25, end_time=12.0, seed=5)
            engine = sim.build_engine(
                CONTROLLERS[controller_key](), seed=9, engine=mode
            )
            result = engine.run(max_steps=10**5)
            return sim.history, [s.as_dict() for s in result.steps]

        ref_history, ref_steps = run("reference")
        fast_history, fast_steps = run("fast")
        assert fast_steps == ref_steps
        assert fast_history == ref_history


class TestEngineModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(RuntimeEngineError):
            resolve_engine_mode("turbo")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert resolve_engine_mode(None) == "reference"
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert resolve_engine_mode(None) == "fast"
        assert resolve_engine_mode("reference") == "reference"  # explicit wins

    def test_engine_records_mode(self):
        workload = ReplayGraphWorkload(gnm_random(20, 2, seed=0))
        engine = workload.build_engine(FixedController(4), seed=0, engine="fast")
        assert engine.engine_mode == "fast"
