"""Tests for repro.runtime.workloads."""

import pytest

from repro.control.fixed import FixedController
from repro.errors import RuntimeEngineError
from repro.graph.generators import gnm_random, union_of_cliques
from repro.runtime.workloads import (
    ConsumingGraphWorkload,
    RegeneratingGraphWorkload,
    ReplayGraphWorkload,
)


class TestReplayWorkload:
    def test_workset_size_constant(self):
        wl = ReplayGraphWorkload(gnm_random(50, 4, seed=0))
        eng = wl.build_engine(FixedController(8), seed=1)
        for _ in range(10):
            eng.step()
        assert len(wl.workset) == 50

    def test_graph_untouched(self):
        g = gnm_random(40, 4, seed=2)
        edges_before = sorted(g.edges())
        wl = ReplayGraphWorkload(g)
        wl.build_engine(FixedController(8), seed=3).run(max_steps=20)
        assert sorted(g.edges()) == edges_before

    def test_stationary_conflict_ratio(self):
        """Replay keeps r̄(m) constant: halves of a long run agree."""
        wl = ReplayGraphWorkload(union_of_cliques(30, 5))
        eng = wl.build_engine(FixedController(30), seed=4)
        res = eng.run(max_steps=400)
        rs = res.r_trace
        first, second = rs[:200].mean(), rs[200:].mean()
        assert abs(first - second) < 0.05


class TestConsumingWorkload:
    def test_graph_drains_completely(self):
        g = gnm_random(60, 5, seed=5)
        wl = ConsumingGraphWorkload(g)
        res = wl.build_engine(FixedController(10), seed=6).run()
        assert g.num_nodes == 0
        assert res.total_committed == 60

    def test_conflicts_decline_as_graph_empties(self):
        g = union_of_cliques(5, 20)  # dense: lots of early conflicts
        wl = ConsumingGraphWorkload(g)
        res = wl.build_engine(FixedController(50), seed=7).run()
        rs = res.r_trace
        assert rs[0] > rs[-1]


class TestRegeneratingWorkload:
    def test_size_and_degree_stationary(self):
        g = gnm_random(80, 6, seed=8)
        wl = RegeneratingGraphWorkload(g, target_degree=6, seed=9)
        eng = wl.build_engine(FixedController(10), seed=10)
        eng.run(max_steps=100)
        assert g.num_nodes == 80
        assert g.average_degree == pytest.approx(6.0, abs=2.0)

    def test_workset_tracks_graph(self):
        g = gnm_random(30, 4, seed=11)
        wl = RegeneratingGraphWorkload(g, target_degree=4, seed=12)
        eng = wl.build_engine(FixedController(5), seed=13)
        for _ in range(20):
            eng.step()
        # every pending task refers to a live node
        assert len(wl.workset) == g.num_nodes

    def test_negative_degree_rejected(self):
        with pytest.raises(RuntimeEngineError):
            RegeneratingGraphWorkload(gnm_random(10, 2, seed=0), target_degree=-1)
