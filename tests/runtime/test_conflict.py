"""Tests for repro.runtime.conflict — batch conflict resolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConflictDetectionError
from repro.graph.generators import gnm_random
from repro.model.permutation import committed_set
from repro.runtime.conflict import BatchOutcome, ExplicitGraphPolicy, ItemLockPolicy
from repro.runtime.task import CallbackOperator, Task


def items_operator(neighborhoods: dict[int, set]):
    """Operator whose neighbourhood is looked up by payload."""
    return CallbackOperator(
        neighborhood=lambda t: neighborhoods[t.payload], apply=lambda t: []
    )


class TestBatchOutcome:
    def test_counts_and_ratio(self):
        out = BatchOutcome([Task(payload=1)], [Task(payload=2), Task(payload=3)])
        assert out.launched == 3
        assert out.conflict_ratio == pytest.approx(2 / 3)

    def test_empty_outcome(self):
        out = BatchOutcome([], [])
        assert out.launched == 0 and out.conflict_ratio == 0.0


class TestItemLockPolicy:
    def test_disjoint_all_commit(self):
        op = items_operator({0: {"a"}, 1: {"b"}, 2: {"c"}})
        batch = [Task(payload=i) for i in range(3)]
        out = ItemLockPolicy().resolve(batch, op)
        assert len(out.committed) == 3 and not out.aborted

    def test_overlap_first_wins(self):
        op = items_operator({0: {"x", "y"}, 1: {"y", "z"}})
        t0, t1 = Task(payload=0), Task(payload=1)
        out = ItemLockPolicy().resolve([t0, t1], op)
        assert out.committed == [t0] and out.aborted == [t1]

    def test_aborted_task_releases_items(self):
        # 1 conflicts with 0 and aborts; 2 overlaps only 1's items -> commits
        op = items_operator({0: {"a"}, 1: {"a", "b"}, 2: {"b"}})
        batch = [Task(payload=i) for i in range(3)]
        out = ItemLockPolicy().resolve(batch, op)
        assert [t.payload for t in out.committed] == [0, 2]

    def test_empty_neighborhood_always_commits(self):
        op = items_operator({0: {"a"}, 1: set()})
        batch = [Task(payload=0), Task(payload=1)]
        out = ItemLockPolicy().resolve(batch, op)
        assert len(out.committed) == 2

    def test_duplicate_task_raises(self):
        op = items_operator({0: {"a"}})
        t = Task(payload=0)
        with pytest.raises(ConflictDetectionError):
            ItemLockPolicy().resolve([t, t], op)

    def test_empty_batch(self):
        out = ItemLockPolicy().resolve([], items_operator({}))
        assert out.launched == 0


class TestExplicitGraphPolicy:
    def test_matches_model_semantics(self, medium_random_graph):
        """Graph policy must equal the paper's committed_set semantics."""
        g = medium_random_graph
        policy = ExplicitGraphPolicy(g)
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        rng = np.random.default_rng(3)
        nodes = g.nodes()
        for _ in range(20):
            order = [nodes[i] for i in rng.permutation(len(nodes))[:50]]
            out = policy.resolve([Task(payload=u) for u in order], op)
            assert [t.payload for t in out.committed] == committed_set(g, order)

    def test_dead_payload_raises(self, small_graph):
        policy = ExplicitGraphPolicy(small_graph)
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        with pytest.raises(ConflictDetectionError):
            policy.resolve([Task(payload=99)], op)

    def test_non_int_payload_raises(self, small_graph):
        policy = ExplicitGraphPolicy(small_graph)
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        with pytest.raises(ConflictDetectionError):
            policy.resolve([Task(payload="zero")], op)

    def test_duplicate_task_raises(self, small_graph):
        policy = ExplicitGraphPolicy(small_graph)
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        t = Task(payload=0)
        with pytest.raises(ConflictDetectionError):
            policy.resolve([t, t], op)


class TestEquivalenceOfPolicies:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(3, 25), st.data())
    def test_item_lock_equals_graph_policy_on_edges(self, n, data):
        """Locking closed neighbourhoods == explicit-graph conflicts.

        If each task's item set is {node} ∪ neighbours, two tasks share an
        item iff they are adjacent or share a neighbour; restricted to a
        batch of pairwise non-identical nodes, adjacency conflicts are
        detected identically when the graph is triangle-expanded.  Here we
        test the exact statement that holds in general: item-lock with
        item sets = incident EDGES equals graph adjacency.
        """
        seed = data.draw(st.integers(0, 200))
        g = gnm_random(n, min(3.0, n - 1), seed=seed)
        rng = np.random.default_rng(seed)
        nodes = g.nodes()
        m = data.draw(st.integers(1, n))
        order = [nodes[i] for i in rng.permutation(n)[:m]]

        def incident_edges(t):
            u = t.payload
            return {frozenset((u, v)) for v in g.neighbors(u)}

        op = CallbackOperator(neighborhood=incident_edges, apply=lambda t: [])
        out_items = ItemLockPolicy().resolve([Task(payload=u) for u in order], op)
        expected = committed_set(g, order)
        assert [t.payload for t in out_items.committed] == expected
