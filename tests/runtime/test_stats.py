"""Tests for repro.runtime.stats."""

import numpy as np
import pytest

from repro.runtime.stats import RunResult, StepStats


def make_result(ms, rs=None, committed=None):
    """Build a RunResult from an m-trace (and optional r-trace)."""
    res = RunResult()
    for t, m in enumerate(ms):
        launched = m
        aborted = int(round((rs[t] if rs else 0.0) * launched))
        res.append(
            StepStats(
                step=t,
                requested=m,
                launched=launched,
                committed=launched - aborted,
                aborted=aborted,
                workset_before=100,
                workset_after=100,
            )
        )
    return res


class TestStepStats:
    def test_conflict_ratio(self):
        s = StepStats(0, 10, 10, 7, 3, 50, 47)
        assert s.conflict_ratio == pytest.approx(0.3)

    def test_zero_launched(self):
        s = StepStats(0, 1, 0, 0, 0, 0, 0)
        assert s.conflict_ratio == 0.0


class TestRunResultTotals:
    def test_traces(self):
        res = make_result([2, 4, 8], rs=[0.0, 0.5, 0.25])
        assert res.m_trace.tolist() == [2, 4, 8]
        assert res.r_trace.tolist() == [0.0, 0.5, 0.25]
        assert res.committed_trace.tolist() == [2, 2, 6]
        assert res.total_launched == 14
        assert res.total_committed == 10
        assert res.total_aborted == 4
        assert res.wasted_fraction == pytest.approx(4 / 14)
        assert res.processor_steps() == 14

    def test_speedup(self):
        res = make_result([4, 4])
        assert res.speedup_vs_serial() == pytest.approx(4.0)

    def test_empty_result(self):
        res = RunResult()
        assert len(res) == 0
        assert res.wasted_fraction == 0.0
        assert res.mean_conflict_ratio == 0.0
        assert res.speedup_vs_serial() == 0.0

    def test_repr(self):
        assert "steps=1" in repr(make_result([2]))


class TestAllocationChurn:
    def test_constant_allocation_no_churn(self):
        assert make_result([5, 5, 5, 5]).allocation_churn() == 0.0

    def test_churn_value(self):
        assert make_result([2, 4, 4, 10]).allocation_churn() == pytest.approx(8 / 3)

    def test_short_traces(self):
        assert make_result([7]).allocation_churn() == 0.0
        assert RunResult().allocation_churn() == 0.0


class TestSettlingStep:
    def test_simple_convergence(self):
        res = make_result([2, 4, 10, 10, 10, 10])
        assert res.settling_step(10, band=0.3) == 2

    def test_never_settles(self):
        res = make_result([1, 1, 1, 1])
        assert res.settling_step(100, band=0.3) == 4

    def test_outlier_forgiveness(self):
        # one excursion among 12 settled steps is forgiven at 10%
        ms = [2, 10, 10, 10, 10, 10, 25, 10, 10, 10, 10, 10, 10]
        res = make_result(ms)
        assert res.settling_step(10, band=0.3, outlier_fraction=0.1) == 1
        # but with zero tolerance settling starts after the excursion
        assert res.settling_step(10, band=0.3, outlier_fraction=0.0) == 7

    def test_settling_requires_inside_start(self):
        res = make_result([50, 10, 10, 10])
        t = res.settling_step(10, band=0.3)
        assert t == 1

    def test_validation(self):
        res = make_result([1])
        with pytest.raises(ValueError):
            res.settling_step(0)
        with pytest.raises(ValueError):
            res.settling_step(10, band=0)
        with pytest.raises(ValueError):
            res.settling_step(10, outlier_fraction=1.0)

    def test_empty_trace(self):
        assert RunResult().settling_step(10) == 0
