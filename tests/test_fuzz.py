"""Cross-cutting property-based fuzz tests.

Hammer the controllers, engines and analytic kernels with adversarial
random inputs and check only the *invariants* — the statements that must
hold regardless of what the environment throws at them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    AIMDController,
    BisectionController,
    HybridController,
    NoiseAdaptiveHybridController,
    PIController,
    ProbingHybridController,
    RecurrenceAController,
    RecurrenceBController,
)
from repro.graph.generators import gnm_random
from repro.runtime.ordered import OrderedEngine, PriorityWorkset
from repro.runtime.task import CallbackOperator, Task
from repro.control.fixed import FixedController


CONTROLLER_FACTORIES = [
    lambda: HybridController(0.2, m_max=64),
    lambda: HybridController(0.2, m_max=64, small_params=None),
    lambda: RecurrenceAController(0.2, m_max=64),
    lambda: RecurrenceBController(0.2, m_max=64),
    lambda: AIMDController(0.2, m_max=64),
    lambda: PIController(0.2, m_max=64),
    lambda: BisectionController(0.2, m_max=64),
    lambda: NoiseAdaptiveHybridController(0.2, m_max=64),
    lambda: ProbingHybridController(0.2, n=100, m_max=64),
]


class TestControllerInvariantsUnderArbitrarySignals:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, len(CONTROLLER_FACTORIES) - 1),
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=120),
    )
    def test_allocations_always_in_range(self, which, signal):
        """No r-sequence, however adversarial, drives m outside [m_min, m_max]."""
        ctrl = CONTROLLER_FACTORIES[which]()
        for r in signal:
            m = ctrl.propose()
            assert 2 <= m <= 64
            ctrl.observe(r, m)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, len(CONTROLLER_FACTORIES) - 1),
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=60),
    )
    def test_reset_restores_determinism(self, which, signal):
        """reset() returns the controller to a state equivalent to fresh."""
        ctrl = CONTROLLER_FACTORIES[which]()
        fresh = CONTROLLER_FACTORIES[which]()
        for r in signal:
            m = ctrl.propose()
            ctrl.observe(r, m)
        ctrl.reset()
        for r in signal:
            m_reset = ctrl.propose()
            m_fresh = fresh.propose()
            assert m_reset == m_fresh
            ctrl.observe(r, m_reset)
            fresh.observe(r, m_fresh)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=4, max_size=200))
    def test_hybrid_trace_lengths_consistent(self, signal):
        ctrl = HybridController(0.25)
        for r in signal:
            m = ctrl.propose()
            ctrl.observe(r, m)
        assert len(ctrl.trace.proposals) == len(signal)
        assert len(ctrl.trace.observations) == len(signal)


class TestOrderedEngineChronology:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0.0, 100.0), st.integers(0, 5)),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 16),
        st.integers(0, 1000),
    )
    def test_commits_always_chronological(self, spec, m, seed):
        """Arbitrary priorities + overlapping item sets: the committed
        sequence must be globally sorted by priority."""
        committed_order: list[float] = []
        prios: dict[int, float] = {}
        ws = PriorityWorkset()
        for i, (prio, item) in enumerate(spec):
            t = Task(payload=(i, item))
            prios[t.uid] = prio
            ws.add(t, prio)

        def apply(task):
            committed_order.append(prios[task.uid])
            return []

        op = CallbackOperator(neighborhood=lambda t: {t.payload[1]}, apply=apply)
        eng = OrderedEngine(
            workset=ws,
            operator=op,
            controller=FixedController(m),
            priority_of=lambda t: prios[t.uid],
            seed=seed,
        )
        eng.run(max_steps=10_000)
        assert committed_order == sorted(committed_order)
        assert len(committed_order) == len(spec)


class TestActiveSetMatchesModel:
    """Incremental active set == from-scratch model under arbitrary op mixes.

    The model is a plain list with linear-search discard implementing the
    documented semantics independently (swap-removal, reference take
    loop); the invariant is *full slot-order equality* after every
    operation, plus uid -> slot map agreement.
    """

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.data())
    def test_slot_list_equals_model(self, seed, data):
        from repro.runtime.active_set import ActiveSet

        ws = ActiveSet()
        model: list[Task] = []
        rng_ws = np.random.default_rng(seed)
        rng_model = np.random.default_rng(seed)
        payload = 0
        ops = data.draw(
            st.lists(st.sampled_from(["add", "batch", "take", "discard"]),
                     min_size=1, max_size=60)
        )
        for op in ops:
            if op == "add":
                t = Task(payload=payload)
                payload += 1
                ws.add(t)
                model.append(t)
            elif op == "batch":
                count = data.draw(st.integers(0, 5))
                fresh = [Task(payload=payload + i) for i in range(count)]
                payload += count
                ws.add_batch(fresh)
                model.extend(fresh)
            elif op == "take" and model:
                k = data.draw(st.integers(0, len(model) + 2))
                got = ws.take(k, rng_ws)
                want = []
                for _ in range(min(k, len(model))):
                    j = int(rng_model.integers(0, len(model)))
                    model[j], model[-1] = model[-1], model[j]
                    want.append(model.pop())
                assert [t.uid for t in got] == [t.uid for t in want]
            elif op == "discard" and model:
                j = data.draw(st.integers(0, len(model) - 1))
                victim = model[j]
                assert ws.discard(victim) is True
                model[j] = model[-1]
                model.pop()
            # the load-bearing invariant: identical slot lists...
            assert [t.uid for t in ws.tasks()] == [t.uid for t in model]
            # ...and an agreeing uid -> slot map
            for i, t in enumerate(model):
                assert ws.index_of(t) == i
        assert rng_ws.bit_generator.state == rng_model.bit_generator.state


class TestConflictDeltaViewMatchesReference:
    """Memoised CSR deltas == full reference resolution under morphs.

    Arbitrary add_node / add_edge / remove_node / remove_edge sequences
    interleaved with conflict resolutions: the delta-backed fast path
    must partition every batch exactly like the reference walk.
    """

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.data())
    def test_delta_resolution_equals_reference(self, seed, data):
        from repro.runtime.conflict import ExplicitGraphPolicy

        g = gnm_random(12, 3, seed=seed)
        policy = ExplicitGraphPolicy(g, csr_deltas=True)
        reference = ExplicitGraphPolicy(g)
        rng = np.random.default_rng(seed)
        ops = data.draw(
            st.lists(
                st.sampled_from(
                    ["add_node", "add_edge", "remove_node", "remove_edge", "resolve"]
                ),
                min_size=1,
                max_size=50,
            )
        )
        for op in ops:
            nodes = list(g.nodes())
            if op == "add_node":
                new = g.add_node()
                if nodes and data.draw(st.booleans()):
                    g.add_edge(new, int(rng.choice(nodes)))
            elif op == "add_edge" and len(nodes) >= 2:
                u, v = rng.choice(nodes, size=2, replace=False)
                g.add_edge(int(u), int(v))
            elif op == "remove_node" and len(nodes) > 2:
                g.remove_node(int(rng.choice(nodes)))
            elif op == "remove_edge":
                edges = [(u, v) for u in nodes for v in g.neighbors(u) if u < v]
                if edges:
                    u, v = edges[int(rng.integers(0, len(edges)))]
                    g.remove_edge(u, v)
            else:  # resolve on a random batch of distinct live nodes
                if not nodes:
                    continue
                m = int(rng.integers(1, len(nodes) + 1))
                picks = rng.choice(nodes, size=m, replace=False)
                batch = [Task(payload=int(p)) for p in picks]
                fast = policy.resolve_fast(batch, operator=None)
                ref = reference.resolve(batch, operator=None)
                assert [t.uid for t in fast.committed] == [t.uid for t in ref.committed]
                assert [t.uid for t in fast.aborted] == [t.uid for t in ref.aborted]
        # one final resolution so op mixes ending in morphs are covered too
        nodes = list(g.nodes())
        if nodes:
            batch = [Task(payload=int(p)) for p in nodes]
            fast = policy.resolve_fast(batch, operator=None)
            ref = reference.resolve(batch, operator=None)
            assert [t.uid for t in fast.committed] == [t.uid for t in ref.committed]
            assert [t.uid for t in fast.aborted] == [t.uid for t in ref.aborted]


class TestWindowedTakeMatchesModel:
    """Windowed draws == a from-scratch model with a cloned RNG.

    The model reimplements the documented k-of-top semantics directly on
    a sorted list (pop the ``draws[i]``-th earliest remaining entry, one
    scalar bounded draw per round); the invariant is full batch-order
    equality plus bit-level RNG state agreement after every take — the
    same pattern that pins the ActiveSet above.
    """

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.data())
    def test_priority_take_window_equals_model(self, seed, data):
        ws = PriorityWorkset()
        model: list[tuple[float, int, Task]] = []  # sorted (prio, tie, task)
        rng_ws = np.random.default_rng(seed)
        rng_model = np.random.default_rng(seed)
        tie = 0
        payload = 0
        ops = data.draw(
            st.lists(st.sampled_from(["add", "take"]), min_size=1, max_size=50)
        )
        for op in ops:
            if op == "add":
                prio = float(data.draw(st.integers(0, 20)))
                t = Task(payload=payload)
                payload += 1
                ws.add(t, prio)
                model.append((prio, tie, t))
                tie += 1
                model.sort(key=lambda e: (e[0], e[1]))
            elif model:
                m = data.draw(st.integers(0, len(model) + 2))
                window = data.draw(st.integers(1, len(model) + 2))
                batch, draws = ws.take_window(m, window, rng_ws)
                want = []
                want_draws = []
                for round_ in range(min(m, len(model))):
                    high = min(window, len(model))
                    j = 0 if window == 1 else int(
                        rng_model.integers(0, high, dtype=np.int64)
                    )
                    prio, _, t = model.pop(j)
                    want.append((prio, t))
                    want_draws.append(j)
                assert [(p, t.uid) for p, t in batch] == [
                    (p, t.uid) for p, t in want
                ]
                assert draws == want_draws
            assert len(ws) == len(model)
        assert rng_ws.bit_generator.state == rng_model.bit_generator.state

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10**6), st.data())
    def test_arrival_take_window_equals_model(self, seed, data):
        from repro.runtime.workset import ArrivalWorkset

        ws = ArrivalWorkset()
        model: list[Task] = []  # arrival order
        rng_ws = np.random.default_rng(seed)
        rng_model = np.random.default_rng(seed)
        payload = 0
        ops = data.draw(
            st.lists(st.sampled_from(["add", "take"]), min_size=1, max_size=50)
        )
        for op in ops:
            if op == "add":
                t = Task(payload=payload)
                payload += 1
                ws.add(t)
                model.append(t)
            elif model:
                m = data.draw(st.integers(0, len(model) + 2))
                window = data.draw(st.integers(1, len(model) + 2))
                batch, draws = ws.take_window(m, window, rng_ws)
                want = []
                want_draws = []
                for round_ in range(min(m, len(model))):
                    high = min(window, len(model))
                    j = 0 if window == 1 else int(
                        rng_model.integers(0, high, dtype=np.int64)
                    )
                    want.append(model.pop(j))
                    want_draws.append(j)
                assert [t.uid for t in batch] == [t.uid for t in want]
                assert draws == want_draws
            assert len(ws) == len(model)
        assert rng_ws.bit_generator.state == rng_model.bit_generator.state


class TestRelaxedOrderOnMorphingGraphs:
    """Relaxed/async runs over morphing graphs: fast == reference.

    Random regenerating workloads churn the topology every step; the
    vectorised kernel path must stay byte-identical to the reference
    walk for every commit-order policy, exactly as the unordered
    differential suite demands.
    """

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(0, 10**6),
        st.sampled_from(["relaxed:2", "relaxed:5", "async:3"]),
        st.integers(1, 12),
    )
    def test_fast_equals_reference_under_morphs(self, seed, order, m):
        from repro import RunConfig
        from repro.api import run as api_run
        from repro.obs import TraceRecorder

        def trace(mode):
            recorder = TraceRecorder()
            # seed goes through the config: the regenerating workload
            # draws its replacement edges from config.seed
            api_run(
                RunConfig(
                    workload="regenerating",
                    controller="fixed",
                    m=m,
                    order=order,
                    max_steps=15,
                    seed=seed,
                    engine=mode,
                ),
                graph=gnm_random(30, 4, seed=seed),
                recorder=recorder,
            )
            return recorder.to_jsonl()

        assert trace("fast") == trace("reference")


class TestAnalyticKernelStability:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 50), st.floats(0.0, 5.0), st.integers(0, 10**6))
    def test_conflict_curve_bounded(self, n, d, seed):
        from repro.model.conflict_ratio import estimate_conflict_ratio

        g = gnm_random(n, min(d, n - 1), seed=seed)
        ci = estimate_conflict_ratio(g, max(n // 2, 1), reps=30, seed=seed)
        assert 0.0 <= ci.mean <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 200), st.integers(0, 30), st.data())
    def test_first_come_probability_in_unit_interval(self, n, degree, data):
        from repro.model.conflict_ratio import first_come_probability

        degree = min(degree, n - 1)
        m = data.draw(st.integers(0, n))
        p = first_come_probability(n, degree, m)
        assert 0.0 <= p <= 1.0
