"""Tests for repro.control.tuning — controller evaluation machinery."""

import pytest

from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.control.oracle import OracleController
from repro.control.recurrence import RecurrenceAController
from repro.control.tuning import (
    evaluate_controller,
    oracle_mu,
    summarize_sweep,
    sweep_controllers,
)
from repro.errors import ControllerError
from repro.graph.generators import gnm_random, union_of_cliques


@pytest.fixture(scope="module")
def eval_graph():
    return gnm_random(400, 10, seed=100)


class TestOracleMu:
    def test_mu_sits_on_target(self, eval_graph):
        """r̄(μ) ≈ ρ by construction."""
        from repro.model.conflict_ratio import estimate_conflict_ratio

        mu = oracle_mu(eval_graph, 0.2, reps=150, seed=0)
        r_at_mu = estimate_conflict_ratio(eval_graph, mu, reps=400, seed=1)
        assert r_at_mu.mean == pytest.approx(0.2, abs=0.05)

    def test_mu_monotone_in_rho(self, eval_graph):
        mu_low = oracle_mu(eval_graph, 0.1, reps=150, seed=2)
        mu_high = oracle_mu(eval_graph, 0.4, reps=150, seed=2)
        assert mu_low < mu_high

    def test_disjoint_cliques_mu_scales_with_count(self):
        few = oracle_mu(union_of_cliques(10, 8), 0.2, reps=150, seed=3)
        many = oracle_mu(union_of_cliques(60, 8), 0.2, reps=150, seed=3)
        assert many > few

    def test_tiny_graph_rejected(self):
        from repro.graph.ccgraph import CCGraph

        with pytest.raises(ControllerError):
            oracle_mu(CCGraph(), 0.2)


class TestEvaluateController:
    def test_oracle_settles_immediately(self, eval_graph):
        mu = oracle_mu(eval_graph, 0.2, reps=150, seed=4)
        metrics, result = evaluate_controller(
            OracleController(mu), eval_graph, 0.2, steps=60, mu=mu, seed=5
        )
        assert metrics.settling_step == 0
        assert metrics.settled
        assert len(result) == 60

    def test_hybrid_beats_reca_in_settling(self, eval_graph):
        mu = oracle_mu(eval_graph, 0.2, reps=150, seed=6)
        mh, _ = evaluate_controller(
            HybridController(0.2), eval_graph, 0.2, steps=150, mu=mu, seed=7
        )
        ma, _ = evaluate_controller(
            RecurrenceAController(0.2), eval_graph, 0.2, steps=150, mu=mu, seed=7
        )
        assert mh.settling_step < ma.settling_step

    def test_fixed_wrong_m_never_settles(self, eval_graph):
        mu = oracle_mu(eval_graph, 0.2, reps=150, seed=8)
        metrics, _ = evaluate_controller(
            FixedController(2), eval_graph, 0.2, steps=60, mu=mu, seed=9
        )
        assert not metrics.settled

    def test_graph_not_mutated(self, eval_graph):
        edges_before = eval_graph.num_edges
        evaluate_controller(
            HybridController(0.2), eval_graph, 0.2, steps=20, mu=50, seed=10
        )
        assert eval_graph.num_edges == edges_before

    def test_wobble_metric(self, eval_graph):
        metrics, _ = evaluate_controller(
            OracleController(40), eval_graph, 0.2, steps=30, mu=40, seed=11
        )
        assert metrics.wobble == 0.0  # constant allocation


class TestSweep:
    def test_sweep_shape_and_summary(self, eval_graph):
        factories = {
            "hybrid": lambda: HybridController(0.2),
            "fixed": lambda: FixedController(8),
        }
        out = sweep_controllers(
            factories, eval_graph, 0.2, steps=40, replications=2, seed=12
        )
        assert set(out) == {"hybrid", "fixed"}
        assert all(len(v) == 2 for v in out.values())
        rows = summarize_sweep(out)
        assert len(rows) == 2 and rows[0][0] in factories

    def test_zero_replications_rejected(self, eval_graph):
        with pytest.raises(ControllerError):
            sweep_controllers({}, eval_graph, 0.2, replications=0)
