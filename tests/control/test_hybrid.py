"""Tests for repro.control.hybrid — Algorithm 1, rule by rule."""

import math

import pytest

from repro.control.hybrid import HybridController, HybridParams
from repro.errors import ControllerError


def drive(controller, r_values):
    out = []
    for r in r_values:
        m = controller.propose()
        controller.observe(r, m)
        out.append(m)
    return out


def one_window(controller, r):
    """Run exactly one averaging window at constant realisation r."""
    p = controller.params if controller.small_params is None else controller._active_params()
    drive(controller, [r] * p.period)


class TestPaperDefaults:
    def test_default_parameters_match_pseudocode(self):
        c = HybridController(0.25)
        assert c.m0 == 2 and c.m_min == 2 and c.m_max == 1024
        assert c.params.period == 4
        assert c.params.r_min == pytest.approx(0.03)
        assert c.params.alpha0 == pytest.approx(0.25)
        assert c.params.alpha1 == pytest.approx(0.06)

    def test_initial_m_is_m0(self):
        assert HybridController(0.2).propose() == 2


class TestRuleSelection:
    def test_far_from_target_uses_recurrence_b(self):
        # r = 0 -> alpha = 1 > alpha0 -> B with r floored at r_min
        c = HybridController(0.2, m0=10, small_params=None)
        drive(c, [0.0] * 4)
        assert c.current_m == math.ceil(0.2 / 0.03 * 10)
        assert c.updates[-1][1] == "B"

    def test_b_uses_measured_r_when_above_floor(self):
        c = HybridController(0.2, m0=10, small_params=None)
        drive(c, [0.1] * 4)  # alpha = 0.5 > alpha0
        assert c.current_m == math.ceil(0.2 / 0.1 * 10)

    def test_moderate_error_uses_recurrence_a(self):
        # r = 0.17, rho = 0.2: alpha = 0.15 in (alpha1, alpha0] -> A
        c = HybridController(0.2, m0=100, small_params=None)
        drive(c, [0.17] * 4)
        assert c.updates[-1][1] == "A"
        assert c.current_m == math.ceil((1 - 0.17 + 0.2) * 100)

    def test_dead_band_holds(self):
        # r = 0.21: alpha = 0.05 < alpha1 = 0.06 -> hold
        c = HybridController(0.2, m0=50, small_params=None)
        drive(c, [0.21] * 4)
        assert c.updates[-1][1] == "hold"
        assert c.current_m == 50

    def test_b_shrinks_when_overloaded(self):
        # r = 0.8 >> rho -> B scales down by rho/r
        c = HybridController(0.2, m0=100, small_params=None)
        drive(c, [0.8] * 4)
        assert c.current_m == math.ceil(0.2 / 0.8 * 100)


class TestWindowing:
    def test_no_update_mid_window(self):
        c = HybridController(0.2, m0=10, small_params=None)
        drive(c, [0.0] * 3)
        assert c.current_m == 10
        assert c.updates == []

    def test_accumulator_resets_each_window(self):
        c = HybridController(0.2, m0=10, small_params=None)
        drive(c, [0.0] * 4)
        first = c.current_m
        drive(c, [0.2] * 4)  # exactly on target -> hold
        assert c.updates[-1][1] == "hold"
        assert c.current_m == first


class TestClamps:
    def test_m_max_clamp(self):
        c = HybridController(0.5, m0=800, m_max=1024, small_params=None)
        drive(c, [0.03] * 4)  # B wants ~13000
        assert c.current_m == 1024

    def test_m_min_clamp(self):
        c = HybridController(0.2, m0=2, m_min=2, small_params=None)
        drive(c, [1.0] * 4)
        assert c.current_m == 2

    def test_remark1_m_at_least_two(self):
        """Remark 1: keep m ≥ 2 so parallelism stays discoverable."""
        c = HybridController(0.2)
        drive(c, [1.0] * 40)
        assert c.current_m >= 2


class TestSmallMSplit:
    def test_small_regime_parameters_used(self):
        small = HybridParams(period=8, r_min=0.05, alpha0=0.4, alpha1=0.2)
        c = HybridController(0.2, m0=5, small_params=small, small_m_threshold=20)
        # below threshold: window is 8 steps, not 4
        drive(c, [0.0] * 4)
        assert c.updates == []
        drive(c, [0.0] * 4)
        assert len(c.updates) == 1

    def test_normal_regime_above_threshold(self):
        small = HybridParams(period=8)
        c = HybridController(0.2, m0=50, small_params=small, small_m_threshold=20)
        drive(c, [0.0] * 4)
        assert len(c.updates) == 1  # normal window of 4 applied


class TestSmartStart:
    def test_smart_start_uses_cor3(self):
        c = HybridController.smart_start(0.213, n=2000, avg_degree=16.0)
        assert c.propose() == pytest.approx(2000 / (2 * 17), rel=0.2)

    def test_smart_start_safe_for_small_rho(self):
        c = HybridController.smart_start(0.01, n=1000, avg_degree=10.0)
        assert c.propose() >= 2


class TestValidation:
    def test_rho_range(self):
        with pytest.raises(ControllerError):
            HybridController(0.0)
        with pytest.raises(ControllerError):
            HybridController(1.0)

    def test_param_validation(self):
        with pytest.raises(ControllerError):
            HybridParams(period=0).validate()
        with pytest.raises(ControllerError):
            HybridParams(r_min=0.0).validate()
        with pytest.raises(ControllerError):
            HybridParams(alpha0=0.05, alpha1=0.1).validate()

    def test_bad_threshold(self):
        with pytest.raises(ControllerError):
            HybridController(0.2, small_params=HybridParams(), small_m_threshold=0)

    def test_bad_range(self):
        with pytest.raises(ControllerError):
            HybridController(0.2, m_min=0)
        with pytest.raises(ControllerError):
            HybridController(0.2, m_min=5, m_max=4)

    def test_reset_restores_initial_state(self):
        c = HybridController(0.2, m0=10, small_params=None)
        drive(c, [0.0] * 8)
        assert c.current_m != 10
        c.reset()
        assert c.current_m == 10
        assert c.updates == []


class TestClosedLoopConvergence:
    def test_converges_on_linear_plant(self):
        """m/1000 plant, rho=0.2 -> mu=200; hybrid reaches it quickly."""
        c = HybridController(0.2, small_params=None)
        plant = lambda m: min(m / 1000.0, 1.0)
        ms = []
        for _ in range(60):
            m = c.propose()
            ms.append(m)
            c.observe(plant(m), m)
        assert ms[-1] == pytest.approx(200, rel=0.15)
        # reached the 30% band within ~5 windows (20 steps)
        inside = [i for i, m in enumerate(ms) if abs(m - 200) <= 60]
        assert inside and inside[0] <= 20

    def test_tracks_downward_shift(self):
        """Plant gain doubles mid-run; hybrid must come back down."""
        c = HybridController(0.2, small_params=None)
        for t in range(120):
            m = c.propose()
            gain = 1000.0 if t < 60 else 250.0
            c.observe(min(m / gain, 1.0), m)
        assert c.current_m == pytest.approx(50, rel=0.3)
