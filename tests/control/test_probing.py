"""Tests for repro.control.probing — online density estimation."""

import pytest

from repro.control.probing import ProbingHybridController
from repro.errors import ControllerError
from repro.graph.generators import gnm_random
from repro.model.turan import safe_initial_m
from repro.runtime.workloads import ReplayGraphWorkload


class TestProbePhase:
    def test_probes_at_two(self):
        c = ProbingHybridController(0.2, n=1000, probe_windows=2, probe_window_steps=4)
        for _ in range(8):
            assert c.propose() == 2
            assert c.probing
            c.observe(0.0, 2)
        assert not c.probing

    def test_density_estimate_inverts_prop2(self):
        n, d = 1000, 16
        c = ProbingHybridController(0.2, n=n, probe_windows=4, probe_window_steps=4)
        r2 = d / (2 * (n - 1))
        for _ in range(16):
            c.propose()
            c.observe(r2, 2)
        assert c.d_estimate == pytest.approx(d, rel=1e-9)

    def test_jump_is_cor3_safe_m(self):
        n, d = 1000, 16
        c = ProbingHybridController(0.2, n=n, probe_windows=4, probe_window_steps=4)
        r2 = d / (2 * (n - 1))
        for _ in range(16):
            c.propose()
            c.observe(r2, 2)
        assert c.propose() == safe_initial_m(n, d, 0.2)

    def test_zero_conflicts_floors_density(self):
        c = ProbingHybridController(0.2, n=100, probe_windows=2, probe_window_steps=2, d_min=1.0)
        for _ in range(4):
            c.propose()
            c.observe(0.0, 2)
        assert c.d_estimate == 1.0
        assert c.propose() >= 2


class TestEndToEnd:
    def test_converges_on_real_graph(self):
        graph = gnm_random(1500, 16, seed=0)
        wl = ReplayGraphWorkload(graph)
        ctrl = ProbingHybridController(0.2, n=1500)
        eng = wl.build_engine(ctrl, seed=1)
        res = eng.run(max_steps=160)
        assert res.r_trace[80:].mean() == pytest.approx(0.2, abs=0.06)
        # the post-probe jump should land in the right decade immediately
        jump = res.m_trace[ctrl.probe_steps]
        assert 10 <= jump <= 200

    def test_reset(self):
        c = ProbingHybridController(0.2, n=100, probe_windows=1, probe_window_steps=1)
        c.propose()
        c.observe(0.1, 2)
        assert not c.probing
        c.reset()
        assert c.probing
        assert c.d_estimate is None


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ControllerError):
            ProbingHybridController(0.0, n=100)
        with pytest.raises(ControllerError):
            ProbingHybridController(0.2, n=2)
        with pytest.raises(ControllerError):
            ProbingHybridController(0.2, n=100, probe_windows=0)
        with pytest.raises(ControllerError):
            ProbingHybridController(0.2, n=100, d_min=0.0)
        with pytest.raises(ControllerError):
            ProbingHybridController(0.2, n=100, m_min=5, m_max=2)
