"""Tests for repro.control.adaptive — noise-adaptive hybrid."""

import numpy as np
import pytest

from repro.control.adaptive import NoiseAdaptiveHybridController
from repro.control.hybrid import HybridController
from repro.errors import ControllerError
from repro.graph.generators import gnm_random
from repro.runtime.workloads import ReplayGraphWorkload


def run_plant(controller, plant, steps):
    ms = []
    for _ in range(steps):
        m = controller.propose()
        ms.append(m)
        controller.observe(plant(m), m)
    return ms


class TestThresholdAdaptation:
    def test_small_m_gets_wider_band(self):
        c = NoiseAdaptiveHybridController(0.2, m0=4)
        a0_small, a1_small, _ = c.current_thresholds()
        c._m = 400
        a0_big, a1_big, _ = c.current_thresholds()
        assert a1_small > a1_big
        assert a0_small >= a0_big

    def test_large_m_recovers_paper_constants(self):
        c = NoiseAdaptiveHybridController(0.2, m0=1000)
        a0, a1, period = c.current_thresholds()
        assert a1 == pytest.approx(0.06)  # the floor = the paper's alpha1
        assert a0 == pytest.approx(0.25)
        assert period == 4

    def test_band_capped(self):
        c = NoiseAdaptiveHybridController(0.2, m0=2, max_deadband=0.35)
        _, a1, _ = c.current_thresholds()
        assert a1 <= 0.35


class TestClosedLoop:
    def test_converges_on_linear_plant(self):
        c = NoiseAdaptiveHybridController(0.2)
        ms = run_plant(c, lambda m: min(m / 1000.0, 1.0), 80)
        assert ms[-1] == pytest.approx(200, rel=0.2)

    def test_stabler_than_plain_hybrid_at_small_mu(self):
        """Noisy plant with small optimum: adaptive wobbles less."""
        rng = np.random.default_rng(0)

        def noisy_plant(m, mu=12):
            # binomial realisation of r̄(m) = 0.2·m/mu
            p = min(0.2 * m / mu, 1.0)
            return rng.binomial(m, p) / m

        def tail_wobble(ctrl):
            ms = run_plant(ctrl, noisy_plant, 400)
            tail = np.asarray(ms[200:], dtype=float)
            return tail.std() / tail.mean()

        wobble_adaptive = tail_wobble(NoiseAdaptiveHybridController(0.2))
        wobble_plain = tail_wobble(HybridController(0.2, small_params=None))
        assert wobble_adaptive < wobble_plain

    def test_tracks_on_real_graph(self):
        graph = gnm_random(1000, 12, seed=1)
        wl = ReplayGraphWorkload(graph)
        eng = wl.build_engine(NoiseAdaptiveHybridController(0.2), seed=2)
        res = eng.run(max_steps=150)
        assert res.r_trace[60:].mean() == pytest.approx(0.2, abs=0.06)

    def test_reset(self):
        c = NoiseAdaptiveHybridController(0.2, m0=2)
        run_plant(c, lambda m: 0.0, 20)
        assert c.current_m > 2
        c.reset()
        assert c.current_m == 2


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ControllerError):
            NoiseAdaptiveHybridController(0.0)
        with pytest.raises(ControllerError):
            NoiseAdaptiveHybridController(0.2, r_min=0.0)
        with pytest.raises(ControllerError):
            NoiseAdaptiveHybridController(0.2, trigger_rate=1.0)
        with pytest.raises(ControllerError):
            NoiseAdaptiveHybridController(0.2, base_period=0)
        with pytest.raises(ControllerError):
            NoiseAdaptiveHybridController(0.2, m_min=10, m_max=2)
