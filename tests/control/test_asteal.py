"""Tests for repro.control.asteal — the A-Steal-inspired MIMD baseline."""

import pytest

from repro.control.asteal import AStealController
from repro.errors import ControllerError


def run_plant(controller, plant, steps):
    ms = []
    for _ in range(steps):
        m = controller.propose()
        ms.append(m)
        controller.observe(plant(m), m)
    return ms


class TestAStealDynamics:
    def test_geometric_cold_start(self):
        """Efficient windows double the desire — log-time climb like B."""
        c = AStealController(0.2, m0=2, period=1, growth=2.0)
        ms = run_plant(c, lambda m: 0.0, 8)
        assert ms == [2, 4, 8, 16, 32, 64, 128, 256]

    def test_backoff_when_inefficient(self):
        c = AStealController(0.2, m0=128, period=1, growth=2.0)
        ms = run_plant(c, lambda m: 0.9, 3)
        assert ms == [128, 64, 32]

    def test_oscillates_around_optimum(self):
        """MIMD has no dead-band: steady state ping-pongs across μ."""
        c = AStealController(0.2, period=1, growth=2.0)
        ms = run_plant(c, lambda m: min(m / 500.0, 1.0), 60)
        tail = ms[-12:]
        assert min(tail) < 100 <= max(tail)  # straddles mu = 100
        assert len(set(tail)) >= 2  # never settles on one value

    def test_mean_lands_near_optimum(self):
        c = AStealController(0.2, period=1, growth=2.0)
        ms = run_plant(c, lambda m: min(m / 500.0, 1.0), 200)
        mean_tail = sum(ms[-100:]) / 100
        assert 40 <= mean_tail <= 220  # right decade around mu=100

    def test_clamps(self):
        c = AStealController(0.2, m0=2, m_max=32, period=1)
        ms = run_plant(c, lambda m: 0.0, 10)
        assert max(ms) == 32
        c2 = AStealController(0.2, m0=32, m_min=2, m_max=64, period=1)
        ms2 = run_plant(c2, lambda m: 1.0, 10)
        assert min(ms2) == 2

    def test_windowing(self):
        c = AStealController(0.2, m0=4, period=3)
        ms = run_plant(c, lambda m: 0.0, 6)
        assert ms[:3] == [4, 4, 4]
        assert ms[3] == 8

    def test_reset(self):
        c = AStealController(0.2, m0=2, period=1)
        run_plant(c, lambda m: 0.0, 5)
        c.reset()
        assert c.propose() == 2


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ControllerError):
            AStealController(0.0)
        with pytest.raises(ControllerError):
            AStealController(0.2, period=0)
        with pytest.raises(ControllerError):
            AStealController(0.2, growth=1.0)
        with pytest.raises(ControllerError):
            AStealController(0.2, m_min=5, m_max=2)
