"""Tests for repro.control.aimd."""

import pytest

from repro.control.aimd import AIMDController
from repro.errors import ControllerError


def run_plant(controller, plant, steps):
    ms = []
    for _ in range(steps):
        m = controller.propose()
        ms.append(m)
        controller.observe(plant(m), m)
    return ms


class TestAIMD:
    def test_additive_increase(self):
        c = AIMDController(0.2, m0=10, period=1, increase=4)
        run_plant(c, lambda m: 0.0, 1)
        assert c.propose() == 14

    def test_multiplicative_decrease(self):
        c = AIMDController(0.2, m0=100, period=1, decrease=0.5)
        run_plant(c, lambda m: 0.9, 1)
        assert c.propose() == 50

    def test_deadband_holds(self):
        c = AIMDController(0.2, m0=40, period=1, deadband=0.1)
        run_plant(c, lambda m: 0.21, 1)  # within ±10% of rho
        assert c.propose() == 40

    def test_oscillates_around_target(self):
        c = AIMDController(0.2, m0=2, period=1, increase=8)
        ms = run_plant(c, lambda m: min(m / 500.0, 1.0), 120)
        tail = ms[-40:]
        assert 60 <= sum(tail) / len(tail) <= 140  # around mu=100, sawtooth

    def test_linear_climb_is_slow(self):
        """AIMD needs ~mu/increase windows from a cold start."""
        c = AIMDController(0.2, m0=2, period=1, increase=4)
        ms = run_plant(c, lambda m: min(m / 2000.0, 1.0), 30)
        assert ms[-1] < 200  # far from mu=400 even after 30 windows

    def test_clamps(self):
        c = AIMDController(0.2, m0=2, m_max=16, period=1, increase=50)
        run_plant(c, lambda m: 0.0, 2)
        assert c.propose() == 16

    def test_validation(self):
        with pytest.raises(ControllerError):
            AIMDController(0.0)
        with pytest.raises(ControllerError):
            AIMDController(0.2, increase=0)
        with pytest.raises(ControllerError):
            AIMDController(0.2, decrease=1.0)
        with pytest.raises(ControllerError):
            AIMDController(0.2, deadband=-0.1)
        with pytest.raises(ControllerError):
            AIMDController(0.2, period=0)

    def test_reset(self):
        c = AIMDController(0.2, m0=2, period=1)
        run_plant(c, lambda m: 0.0, 5)
        c.reset()
        assert c.propose() == 2
