"""Tests for repro.control.bisection."""

import pytest

from repro.control.bisection import BisectionController
from repro.errors import ControllerError


def run_plant(controller, plant, steps):
    ms = []
    for _ in range(steps):
        m = controller.propose()
        ms.append(m)
        controller.observe(plant(m), m)
    return ms


class TestBisection:
    def test_converges_on_monotone_plant(self):
        # r̄(m) = m/1000, rho=0.2 -> mu=200
        c = BisectionController(0.2, m_max=1024, period=1)
        ms = run_plant(c, lambda m: min(m / 1000.0, 1.0), 40)
        assert ms[-1] == pytest.approx(200, rel=0.15)

    def test_logarithmic_window_count(self):
        c = BisectionController(0.2, m_max=1024, period=1, slack=0.0)
        ms = run_plant(c, lambda m: min(m / 1000.0, 1.0), 40)
        # bracket halves every step at period=1: within ~12 probes
        assert abs(ms[14] - 200) <= 20

    def test_reopens_bracket_on_drift(self):
        # plant shifts: mu goes 200 -> 50
        c = BisectionController(0.2, m_max=1024, period=1)
        plant_a = lambda m: min(m / 1000.0, 1.0)
        plant_b = lambda m: min(m / 250.0, 1.0)
        run_plant(c, plant_a, 30)
        ms = run_plant(c, plant_b, 50)
        assert ms[-1] == pytest.approx(50, rel=0.3)

    def test_respects_bounds(self):
        c = BisectionController(0.2, m_min=2, m_max=64, period=1)
        ms = run_plant(c, lambda m: 0.0, 30)
        assert all(2 <= m <= 64 for m in ms)
        assert ms[-1] == 64  # saturates when never above target

    def test_slack_band_freezes_probe(self):
        c = BisectionController(0.2, period=1, slack=0.05)
        # plant always inside the slack band -> probe stabilises quickly
        ms = run_plant(c, lambda m: 0.2, 10)
        assert ms[-1] == ms[-2]

    def test_validation(self):
        with pytest.raises(ControllerError):
            BisectionController(0.0)
        with pytest.raises(ControllerError):
            BisectionController(0.2, period=0)
        with pytest.raises(ControllerError):
            BisectionController(0.2, m_min=5, m_max=2)
        with pytest.raises(ControllerError):
            BisectionController(0.2, slack=-0.1)

    def test_reset(self):
        c = BisectionController(0.2, period=1)
        run_plant(c, lambda m: 0.5, 10)
        c.reset()
        assert c.propose() == c.m_min
