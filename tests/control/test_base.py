"""Tests for repro.control.base — the propose/observe contract."""

import pytest

from repro.control.base import Controller, clamp
from repro.control.fixed import FixedController
from repro.errors import ControllerError


class TestClamp:
    def test_ceiling(self):
        assert clamp(3.1, 1, 100) == 4

    def test_clamps_low_and_high(self):
        assert clamp(0.2, 2, 10) == 2
        assert clamp(99.5, 2, 10) == 10

    def test_integer_passthrough(self):
        assert clamp(5, 1, 10) == 5

    def test_empty_range_raises(self):
        with pytest.raises(ControllerError):
            clamp(5, 10, 2)


class TestContract:
    def test_propose_records_trace(self):
        c = FixedController(3)
        assert c.propose() == 3
        c.observe(0.1, 3)
        assert c.trace.proposals == [3]
        assert c.trace.observations == [0.1]
        assert c.trace.launched == [3]
        assert len(c.trace) == 1

    def test_observe_without_propose_raises(self):
        c = FixedController(3)
        with pytest.raises(ControllerError):
            c.observe(0.1, 3)

    def test_double_observe_raises(self):
        c = FixedController(3)
        c.propose()
        c.observe(0.0, 3)
        with pytest.raises(ControllerError):
            c.observe(0.0, 3)

    def test_ratio_out_of_range_raises(self):
        c = FixedController(3)
        c.propose()
        with pytest.raises(ControllerError):
            c.observe(1.5, 3)

    def test_negative_launched_raises(self):
        c = FixedController(3)
        c.propose()
        with pytest.raises(ControllerError):
            c.observe(0.5, -1)

    def test_reset_clears_trace(self):
        c = FixedController(3)
        c.propose()
        c.observe(0.2, 3)
        c.reset()
        assert len(c.trace) == 0
        assert c.propose() == 3  # usable again

    def test_subclass_must_return_positive_m(self):
        class Bad(Controller):
            def _next_m(self) -> int:
                return 0

        with pytest.raises(ControllerError):
            Bad().propose()

    def test_trace_arrays(self):
        c = FixedController(2)
        for _ in range(3):
            c.propose()
            c.observe(0.5, 2)
        assert c.trace.m_trace.tolist() == [2, 2, 2]
        assert c.trace.r_trace.tolist() == [0.5, 0.5, 0.5]
