"""Tests for repro.control.fixed."""

import pytest

from repro.control.fixed import FixedController
from repro.errors import ControllerError


class TestFixedController:
    def test_constant_allocation(self):
        c = FixedController(7)
        for _ in range(5):
            assert c.propose() == 7
            c.observe(0.9, 7)

    def test_ignores_observations(self):
        c = FixedController(4)
        c.propose()
        c.observe(1.0, 4)
        assert c.propose() == 4

    def test_invalid_m_raises(self):
        with pytest.raises(ControllerError):
            FixedController(0)
        with pytest.raises(ControllerError):
            FixedController(-3)
