"""Tests for repro.control.diagnostics."""

import pytest

from repro.control.diagnostics import diagnose_hybrid
from repro.control.fixed import FixedController
from repro.control.hybrid import HybridController
from repro.errors import ControllerError
from repro.graph.generators import gnm_random
from repro.runtime.workloads import ReplayGraphWorkload


def run_hybrid(rho=0.2, steps=80, seed=0):
    graph = gnm_random(800, 12, seed=seed)
    ctrl = HybridController(rho, small_params=None)
    ReplayGraphWorkload(graph).build_engine(ctrl, seed=seed + 1).run(max_steps=steps)
    return ctrl


class TestDiagnoseHybrid:
    def test_rule_usage_counts_match_updates(self):
        ctrl = run_hybrid()
        diag = diagnose_hybrid(ctrl)
        total = sum(u.count for u in diag.rule_usage.values())
        assert total == len(ctrl.updates) == diag.windows

    def test_cold_start_uses_recurrence_b(self):
        ctrl = run_hybrid()
        diag = diagnose_hybrid(ctrl)
        assert "B" in diag.rule_usage
        assert diag.rule_usage["B"].first_step <= 8  # early climb is B's job
        assert diag.cold_start_steps >= diag.rule_usage["B"].first_step

    def test_steady_state_mostly_holds_or_a(self):
        ctrl = run_hybrid(steps=200)
        diag = diagnose_hybrid(ctrl)
        ab = diag.rule_usage.get("hold", None)
        a = diag.rule_usage.get("A", None)
        gentle = (ab.count if ab else 0) + (a.count if a else 0)
        assert gentle >= diag.rule_usage["B"].count  # B is the exception

    def test_percentiles_ordered(self):
        diag = diagnose_hybrid(run_hybrid())
        p10, p50, p90 = diag.r_percentiles
        assert p10 <= p50 <= p90

    def test_render_mentions_rules(self):
        diag = diagnose_hybrid(run_hybrid())
        text = diag.render()
        assert "rule" in text and "final allocation" in text

    def test_wrong_type_rejected(self):
        with pytest.raises(ControllerError):
            diagnose_hybrid(FixedController(4))

    def test_fresh_controller_rejected(self):
        with pytest.raises(ControllerError):
            diagnose_hybrid(HybridController(0.2))
