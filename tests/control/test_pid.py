"""Tests for repro.control.pid."""

import pytest

from repro.control.pid import PIController
from repro.errors import ControllerError


def run_plant(controller, plant, steps):
    ms = []
    for _ in range(steps):
        m = controller.propose()
        ms.append(m)
        controller.observe(plant(m), m)
    return ms


class TestPI:
    def test_grows_when_under_target(self):
        c = PIController(0.2, m0=10, period=1)
        ms = run_plant(c, lambda m: 0.0, 5)
        assert ms[-1] > ms[0]

    def test_shrinks_when_over_target(self):
        c = PIController(0.2, m0=100, period=1)
        ms = run_plant(c, lambda m: 0.9, 5)
        assert ms[-1] < ms[0]

    def test_converges_on_linear_plant(self):
        c = PIController(0.2, period=1)
        ms = run_plant(c, lambda m: min(m / 1000.0, 1.0), 150)
        tail = ms[-20:]
        assert sum(tail) / len(tail) == pytest.approx(200, rel=0.25)

    def test_anti_windup_at_clamp(self):
        """Long saturation must not cause a huge overshoot on release."""
        c = PIController(0.2, m0=2, m_max=32, period=1)
        run_plant(c, lambda m: 0.0, 50)  # saturates at 32
        assert c.propose() == 32
        # now plant suddenly reports heavy conflicts; recovery is immediate
        ms = run_plant(c, lambda m: 0.9, 5)
        assert ms[-1] < 32

    def test_clamps(self):
        c = PIController(0.2, m0=2, m_min=2, m_max=64, period=1)
        ms = run_plant(c, lambda m: 0.0, 60)
        assert all(2 <= m <= 64 for m in ms)

    def test_validation(self):
        with pytest.raises(ControllerError):
            PIController(0.0)
        with pytest.raises(ControllerError):
            PIController(0.2, period=0)
        with pytest.raises(ControllerError):
            PIController(0.2, m_min=10, m_max=5)

    def test_reset(self):
        c = PIController(0.2, m0=4, period=1)
        run_plant(c, lambda m: 0.0, 10)
        c.reset()
        assert c.propose() == 4
