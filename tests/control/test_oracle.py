"""Tests for repro.control.oracle."""

import numpy as np
import pytest

from repro.control.oracle import OracleController, mu_from_curve
from repro.errors import ControllerError
from repro.model.conflict_ratio import ConflictCurve


def curve(ms, rs):
    return ConflictCurve(
        ms=np.asarray(ms, dtype=np.int64),
        ratios=np.asarray(rs, dtype=float),
        half_widths=np.zeros(len(ms)),
        replications=1,
    )


class TestMuFromCurve:
    def test_interpolates_between_grid_points(self):
        c = curve([10, 100], [0.1, 0.4])
        # rho=0.2 is 1/3 of the way: mu ≈ 40
        assert mu_from_curve(c, 0.2) == 40

    def test_all_below_target_returns_last(self):
        c = curve([10, 50], [0.05, 0.1])
        assert mu_from_curve(c, 0.5) == 50

    def test_all_above_target_returns_min(self):
        c = curve([10, 50], [0.4, 0.8])
        assert mu_from_curve(c, 0.2, m_min=2) == 2

    def test_exact_grid_hit(self):
        c = curve([10, 20, 40], [0.1, 0.2, 0.5])
        assert 20 <= mu_from_curve(c, 0.2) <= 26

    def test_flat_segment_stays_safe(self):
        c = curve([10, 20], [0.1, 0.1])
        assert mu_from_curve(c, 0.2) == 20

    def test_rho_validation(self):
        with pytest.raises(ControllerError):
            mu_from_curve(curve([1], [0.1]), 1.5)


class TestOracleController:
    def test_constant_mu(self):
        c = OracleController(37)
        for _ in range(3):
            assert c.propose() == 37
            c.observe(0.5, 37)

    def test_clamped_to_range(self):
        assert OracleController(5000, m_max=100).propose() == 100

    def test_from_curve(self):
        c = OracleController.from_curve(curve([10, 100], [0.1, 0.4]), 0.2)
        assert c.propose() == 40

    def test_invalid_mu(self):
        with pytest.raises(ControllerError):
            OracleController(0)
