"""Tests for repro.control.recurrence — Recurrences A and B (Eq. 32–33)."""

import math

import pytest

from repro.control.recurrence import RecurrenceAController, RecurrenceBController
from repro.errors import ControllerError


def drive(controller, r_values):
    """Feed a sequence of conflict ratios; return the m after each step."""
    out = []
    for r in r_values:
        m = controller.propose()
        controller.observe(r, m)
        out.append(m)
    return out


class TestWindowing:
    def test_updates_only_every_period(self):
        c = RecurrenceAController(0.2, period=4)
        ms = drive(c, [0.0] * 8)
        assert ms[:4] == [2, 2, 2, 2]  # unchanged within window
        assert ms[4] > 2  # updated after the first window

    def test_period_one_updates_each_step(self):
        c = RecurrenceAController(0.2, period=1)
        ms = drive(c, [0.0, 0.0])
        assert ms[1] > ms[0]

    def test_average_is_used(self):
        # window [0, 0.4]: average 0.2 == rho -> A multiplies by exactly 1
        c = RecurrenceAController(0.2, m0=10, period=2)
        drive(c, [0.0, 0.4])
        assert c.propose() == 10


class TestRecurrenceA:
    def test_update_formula(self):
        # avg r = 0 -> m <- ceil((1 + rho) m)
        c = RecurrenceAController(0.25, m0=8, period=1)
        drive(c, [0.0])
        assert c.propose() == math.ceil(1.25 * 8)

    def test_decreases_when_over_target(self):
        c = RecurrenceAController(0.2, m0=100, period=1)
        drive(c, [0.8])
        assert c.propose() == math.ceil((1 - 0.8 + 0.2) * 100)

    def test_growth_bounded_by_one_plus_rho(self):
        """A's fundamental slowness: per-window growth ≤ 1 + ρ."""
        c = RecurrenceAController(0.2, m0=2, period=1)
        prev = 2
        for _ in range(20):
            m = c.propose()
            assert m <= math.ceil((1 + 0.2) * prev) + 1
            prev = m
            c.observe(0.0, m)

    def test_clamps(self):
        c = RecurrenceAController(0.3, m0=1000, m_max=64, period=1)
        assert c.propose() == 64

    def test_reset(self):
        c = RecurrenceAController(0.2, m0=2, period=1)
        drive(c, [0.0] * 10)
        c.reset()
        assert c.propose() == 2


class TestRecurrenceB:
    def test_update_formula(self):
        c = RecurrenceBController(0.2, m0=10, period=1)
        drive(c, [0.05])
        assert c.propose() == math.ceil(0.2 / 0.05 * 10)

    def test_rmin_floor_prevents_explosion(self):
        c = RecurrenceBController(0.2, m0=10, period=1, r_min=0.03)
        drive(c, [0.0])
        # without the floor this would divide by zero; with it: 0.2/0.03
        assert c.propose() == math.ceil(0.2 / 0.03 * 10)

    def test_geometric_convergence_on_linear_plant(self):
        """On a linear r̄(m) = m/500 plant, B lands in one window."""
        c = RecurrenceBController(0.2, m0=2, period=1)
        m = c.propose()
        for _ in range(6):
            r = min(m / 500.0, 1.0)
            c.observe(r, m)
            m = c.propose()
        assert m == pytest.approx(100, rel=0.1)  # mu = 0.2*500

    def test_faster_than_a_from_cold_start(self):
        plant = lambda m: min(m / 500.0, 1.0)
        a = RecurrenceAController(0.2, m0=2, period=1)
        b = RecurrenceBController(0.2, m0=2, period=1)
        for ctrl in (a, b):
            for _ in range(8):
                m = ctrl.propose()
                ctrl.observe(plant(m), m)
        assert b.propose() > a.propose()

    def test_validation(self):
        with pytest.raises(ControllerError):
            RecurrenceBController(0.2, r_min=0.0)
        with pytest.raises(ControllerError):
            RecurrenceBController(0.2, r_min=1.0)


class TestSharedValidation:
    def test_rho_bounds(self):
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(ControllerError):
                RecurrenceAController(bad)

    def test_period_bounds(self):
        with pytest.raises(ControllerError):
            RecurrenceAController(0.2, period=0)

    def test_range_bounds(self):
        with pytest.raises(ControllerError):
            RecurrenceAController(0.2, m_min=0)
        with pytest.raises(ControllerError):
            RecurrenceAController(0.2, m_min=10, m_max=5)

    def test_m0_clamped_into_range(self):
        c = RecurrenceAController(0.2, m0=1, m_min=2)
        assert c.propose() == 2
