"""The import-layering lint: the real tree passes, back-edges are caught."""

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_layers  # noqa: E402 - needs the path tweak above


def test_repository_has_no_back_edges(capsys):
    src = Path(__file__).resolve().parent.parent / "src"
    assert check_layers.main(["--src", str(src)]) == 0
    assert "no back-edges" in capsys.readouterr().out


def test_rank_resolution_prefers_longest_prefix():
    assert check_layers.rank_of("repro.runtime.core") < check_layers.rank_of(
        "repro.runtime.policies"
    )
    # unlisted runtime modules fall back to the repro.runtime rank
    assert check_layers.rank_of("repro.runtime.engine") == check_layers.LAYERS[
        "repro.runtime"
    ]
    assert check_layers.rank_of("numpy") is None
    assert check_layers.rank_of("reprography") is None  # not a repro.* prefix


@pytest.fixture
def fake_tree(tmp_path):
    pkg = tmp_path / "src" / "repro"
    (pkg / "model").mkdir(parents=True)
    (pkg / "experiments").mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "model" / "__init__.py").write_text("")
    (pkg / "experiments" / "__init__.py").write_text("")
    return tmp_path / "src"


def test_back_edge_is_reported(fake_tree, capsys):
    (fake_tree / "repro" / "model" / "bad.py").write_text(
        "from repro.experiments.runner import run_experiment\n"
    )
    assert check_layers.main(["--src", str(fake_tree)]) == 1
    err = capsys.readouterr().err
    assert "back-edge" in err
    assert "repro.model.bad" in err


def test_function_level_and_type_checking_imports_are_exempt(fake_tree):
    (fake_tree / "repro" / "model" / "ok.py").write_text(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.experiments.runner import run_experiment\n"
        "def later():\n"
        "    from repro.experiments.runner import run_experiment\n"
        "    return run_experiment\n"
    )
    assert check_layers.main(["--src", str(fake_tree)]) == 0


def test_relative_imports_resolve(fake_tree, capsys):
    (fake_tree / "repro" / "model" / "helper.py").write_text("")
    (fake_tree / "repro" / "model" / "rel.py").write_text(
        "from . import helper\n"
    )
    assert check_layers.main(["--src", str(fake_tree)]) == 0
    # a relative import reaching a higher layer is still a back-edge
    (fake_tree / "repro" / "model" / "rel2.py").write_text(
        "from ..experiments import runner\n"
    )
    assert check_layers.main(["--src", str(fake_tree)]) == 1
    assert "back-edge" in capsys.readouterr().err
