"""Tests for the repro.api facade."""

import pytest

from repro.api import for_each, for_each_ordered, solve_graph
from repro.control import FixedController
from repro.errors import ReproError
from repro.graph.generators import gnm_random
from repro.runtime.task import CallbackOperator, Task


class TestForEach:
    def test_basic_loop(self):
        seen = []
        op = CallbackOperator(
            neighborhood=lambda t: {t.payload % 5},
            apply=lambda t: seen.append(t.payload) or [],
        )
        result = for_each(range(50), op, rho=0.25, seed=0)
        assert sorted(seen) == list(range(50))
        assert result.total_committed == 50

    def test_task_payloads_pass_through(self):
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        tasks = [Task(payload="x")]
        result = for_each(tasks, op, seed=1)
        assert result.total_committed == 1

    def test_spawned_work_processed(self):
        op = CallbackOperator(
            neighborhood=lambda t: (),
            apply=lambda t: [Task(payload=t.payload - 1)] if t.payload > 0 else [],
        )
        result = for_each([3], op, seed=2)
        assert result.total_committed == 4  # 3, 2, 1, 0

    def test_explicit_controller(self):
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        result = for_each(range(10), op, controller=FixedController(10), seed=3)
        assert len(result) == 1

    def test_empty_input_raises(self):
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        with pytest.raises(ReproError):
            for_each([], op)


class TestForEachOrdered:
    def test_commits_chronologically(self):
        order = []
        op = CallbackOperator(
            neighborhood=lambda t: {"shared"},  # full mutual conflict
            apply=lambda t: order.append(t.payload) or [],
        )
        result = for_each_ordered(
            [(3.0, "c"), (1.0, "a"), (2.0, "b")],
            op,
            priority_of=lambda t: 0.0,
            seed=4,
        )
        assert order == ["a", "b", "c"]
        assert result.total_committed == 3

    def test_empty_input_raises(self):
        op = CallbackOperator(neighborhood=lambda t: (), apply=lambda t: [])
        with pytest.raises(ReproError):
            for_each_ordered([], op, priority_of=lambda t: 0.0)


class TestSolveGraph:
    def test_consuming_drains(self):
        g = gnm_random(100, 6, seed=5)
        result = solve_graph(g, rho=0.25, seed=6)
        assert result.total_committed == 100
        assert g.num_nodes == 0

    def test_replay_requires_max_steps(self):
        g = gnm_random(20, 2, seed=7)
        with pytest.raises(ReproError):
            solve_graph(g, consuming=False)

    def test_replay_runs_capped(self):
        g = gnm_random(50, 4, seed=8)
        result = solve_graph(g, consuming=False, max_steps=15, seed=9)
        assert len(result) == 15
        assert g.num_nodes == 50


def test_top_level_exports():
    import repro

    assert repro.for_each is for_each
    assert repro.solve_graph is solve_graph
    assert repro.for_each_ordered is for_each_ordered
