"""Tests for repro.testing.faults — spec matching, DSL, serialisation."""

import pytest

from repro.errors import FaultInjectionError, InjectedFault
from repro.testing import FaultPlan, FaultSpec


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("explode")

    def test_negative_attempt_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("raise", attempts=(-1,))

    def test_nonpositive_hang_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec("hang", seconds=0)

    def test_matching_on_experiment_and_attempt(self):
        spec = FaultSpec("raise", experiment="fig2", attempts=(0, 2))
        assert spec.matches("fig2", 0)
        assert spec.matches("fig2", 2)
        assert not spec.matches("fig2", 1)
        assert not spec.matches("fig3", 0)

    def test_wildcards(self):
        spec = FaultSpec("raise", experiment=None, attempts=None)
        assert spec.matches("anything", 0)
        assert spec.matches("else", 99)

    def test_dict_roundtrip(self):
        spec = FaultSpec("hang", experiment="fig1", attempts=(1,), seconds=2.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_malformed_dict_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec.from_dict({"experiment": "fig1"})  # no kind


class TestFaultPlan:
    def test_empty_plan_is_falsy_and_harmless(self):
        plan = FaultPlan()
        assert not plan
        plan.fire("fig1", 0)  # no-op
        assert plan.describe() == "no faults"

    def test_non_spec_entries_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(("raise",))

    def test_fire_raise(self):
        plan = FaultPlan((FaultSpec("raise", experiment="fig1"),))
        with pytest.raises(InjectedFault, match="fig1 attempt 0"):
            plan.fire("fig1", 0)
        plan.fire("fig1", 1)  # attempt 1 not matched: no-op
        plan.fire("fig2", 0)  # other experiment: no-op

    def test_needs_isolation(self):
        assert not FaultPlan((FaultSpec("raise"),)).needs_isolation
        assert not FaultPlan((FaultSpec("corrupt-cache"),)).needs_isolation
        assert FaultPlan((FaultSpec("hang"),)).needs_isolation
        assert FaultPlan((FaultSpec("exit"),)).needs_isolation
        assert FaultPlan((FaultSpec("kill"),)).needs_isolation

    def test_corrupts_cache_matching(self):
        plan = FaultPlan((FaultSpec("corrupt-cache", experiment="fig1"),))
        assert plan.corrupts_cache("fig1", 0)
        assert not plan.corrupts_cache("fig2", 0)

    def test_corrupt_cache_entry_truncates(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text('{"key": "abc", "result": {}}', encoding="utf-8")
        before = path.read_bytes()
        FaultPlan.corrupt_cache_entry(path)
        after = path.read_bytes()
        assert len(after) == len(before) // 2
        assert before.startswith(after)

    def test_json_roundtrip(self):
        plan = FaultPlan(
            (
                FaultSpec("exit", experiment="fig3", attempts=(0,)),
                FaultSpec("raise", attempts=None),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_parse_json_form(self):
        plan = FaultPlan((FaultSpec("raise", experiment="fig1"),))
        assert FaultPlan.parse(plan.to_json()) == plan

    def test_parse_bad_json_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("{not json")


class TestFaultPlanDSL:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse("exit:fig3:0;raise:*:0,1")
        assert plan.specs == (
            FaultSpec("exit", experiment="fig3", attempts=(0,)),
            FaultSpec("raise", experiment=None, attempts=(0, 1)),
        )

    def test_parse_defaults(self):
        (spec,) = FaultPlan.parse("raise").specs
        assert spec == FaultSpec("raise", experiment=None, attempts=(0,))

    def test_parse_wildcard_attempts(self):
        (spec,) = FaultPlan.parse("hang:fig2:*").specs
        assert spec.attempts is None

    def test_parse_empty_is_empty_plan(self):
        assert FaultPlan.parse("  ") == FaultPlan()

    def test_parse_rejects_garbage(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("raise:fig1:zero")
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("a:b:c:d")
        with pytest.raises(FaultInjectionError):
            FaultPlan.parse("warp:fig1")

    def test_describe_roundtrips_through_parse(self):
        plan = FaultPlan.parse("exit:fig3:0;raise:*:0,1;hang:fig2:*")
        assert FaultPlan.parse(plan.describe()) == plan


class TestFaultPlanAtDSL:
    """The ``kind@target[@attempts]`` form for targets containing ':'."""

    def test_parse_shard_target(self):
        (spec,) = FaultPlan.parse("kill@shard:2").specs
        assert spec == FaultSpec("kill", experiment="shard:2", attempts=(0,))

    def test_parse_attempts_and_wildcards(self):
        plan = FaultPlan.parse("raise@*@0,1;hang@shard:0@*")
        assert plan.specs == (
            FaultSpec("raise", experiment=None, attempts=(0, 1)),
            FaultSpec("hang", experiment="shard:0", attempts=None),
        )

    def test_mixes_with_colon_chunks(self):
        plan = FaultPlan.parse("exit:fig3:0;kill@shard:1@1")
        assert plan.specs == (
            FaultSpec("exit", experiment="fig3", attempts=(0,)),
            FaultSpec("kill", experiment="shard:1", attempts=(1,)),
        )

    def test_too_many_at_fields_rejected(self):
        with pytest.raises(FaultInjectionError, match="too many '@'"):
            FaultPlan.parse("kill@shard:1@0@9")

    def test_colon_overflow_error_points_at_the_at_form(self):
        with pytest.raises(FaultInjectionError, match="kind@target"):
            FaultPlan.parse("kill:shard:1:0")

    def test_describe_picks_at_form_for_colon_targets(self):
        plan = FaultPlan.parse("kill@shard:2")
        assert "@shard:2@" in plan.describe()
        assert FaultPlan.parse(plan.describe()) == plan
