"""Typed configs: validation at construction and exact JSON round-trips."""

import json

import pytest

from repro.config import RunConfig, SweepConfig
from repro.errors import ConfigError


class TestRunConfigValidation:
    def test_defaults_are_valid(self):
        cfg = RunConfig()
        assert cfg.experiment is None
        assert cfg.controller == "hybrid"
        assert cfg.rho == 0.25

    @pytest.mark.parametrize("rho", [0.0, 1.0, -0.5, 1.5, "quarter", None])
    def test_rho_outside_open_interval_rejected(self, rho):
        with pytest.raises(ConfigError, match="rho"):
            RunConfig(rho=rho)

    def test_rho_coerced_to_float(self):
        # ints inside (0,1) cannot exist, but numpy-ish floats normalise
        assert isinstance(RunConfig(rho=0.5).rho, float)

    def test_m_min_greater_than_m_max_rejected(self):
        with pytest.raises(ConfigError, match="empty allocation range"):
            RunConfig(m_min=64, m_max=32)

    def test_m_min_equal_m_max_allowed(self):
        cfg = RunConfig(m_min=32, m_max=32)
        assert (cfg.m_min, cfg.m_max) == (32, 32)

    @pytest.mark.parametrize("field,value", [
        ("seed", 1.5),
        ("seed", True),  # bools are not seeds
        ("m", 0),
        ("m_min", 0),
        ("m_max", 0),
        ("max_steps", -1),
        ("engine", "turbo"),
        ("experiment", ""),
        ("workload", ""),
        ("controller", None),
        ("conflict", ""),
    ])
    def test_bad_field_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            RunConfig(**{field: value})

    def test_positional_experiment_compat(self):
        # the historical parallel.RunConfig("fig1", seed=1, quick=True) shape
        cfg = RunConfig("fig1", seed=1, quick=True)
        assert (cfg.experiment, cfg.seed, cfg.quick) == ("fig1", 1, True)

    def test_frozen_and_hashable(self):
        cfg = RunConfig("fig1")
        with pytest.raises(AttributeError):
            cfg.seed = 3
        assert cfg == RunConfig("fig1")
        assert len({RunConfig("fig1"), RunConfig("fig1")}) == 1

    def test_resolved_seed_explicit_passthrough(self):
        assert RunConfig("fig1", seed=9).resolved_seed(0) == 9

    def test_resolved_seed_derived_is_stable(self):
        a = RunConfig("fig1").resolved_seed(0)
        assert a == RunConfig("fig1").resolved_seed(0)
        assert a != RunConfig("fig2").resolved_seed(0)
        assert a != RunConfig("fig1").resolved_seed(1)

    def test_with_seed(self):
        cfg = RunConfig("fig1").with_seed(5)
        assert cfg.seed == 5
        assert RunConfig("fig1").seed is None  # original untouched


class TestRunConfigOrderValidation:
    @pytest.mark.parametrize(
        "order",
        ["unordered", "ordered", "relaxed:1", "relaxed:16", "async", "async:4"],
    )
    def test_known_specs_accepted_verbatim(self, order):
        assert RunConfig(order=order).order == order

    def test_unknown_policy_name_rejected_at_construction(self):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError, match="order policy") as err:
            RunConfig(order="chaotic")
        # the error enumerates the registry so typos are self-diagnosing
        for name in ("unordered", "ordered", "relaxed", "async"):
            assert name in str(err.value)

    @pytest.mark.parametrize(
        "order",
        [
            "",            # empty spec
            "relaxed",     # depth is mandatory
            "relaxed:0",   # depth must be >= 1
            "relaxed:two", # depth must be an int
            "ordered:3",   # strict order takes no parameter
            "async:x",     # window must be an int
        ],
    )
    def test_malformed_specs_rejected_at_construction(self, order):
        with pytest.raises(ConfigError):
            RunConfig(order=order)

    def test_priority_order_incompatible_with_select_backend(self):
        with pytest.raises(ConfigError, match="work-set"):
            RunConfig(order="relaxed:4", select="incremental")

    def test_unordered_order_composes_with_select_backend(self):
        cfg = RunConfig(order="unordered", select="incremental")
        assert (cfg.order, cfg.select) == ("unordered", "incremental")

    def test_order_round_trips_through_dict_and_json(self):
        cfg = RunConfig(workload="consuming", order="relaxed:8", seed=3)
        assert RunConfig.from_dict(cfg.to_dict()) == cfg
        assert RunConfig.from_json(cfg.to_json()) == cfg
        assert RunConfig.from_json(cfg.to_json()).order == "relaxed:8"


class TestRunConfigSerialisation:
    def test_round_trip_is_exact(self):
        cfg = RunConfig(
            "fig3", seed=11, quick=True, workload="consuming",
            controller="aimd", conflict="explicit-graph", rho=0.4,
            m_min=2, m_max=256, engine="fast", max_steps=50, order="async:8",
        )
        assert RunConfig.from_dict(cfg.to_dict()) == cfg
        assert RunConfig.from_json(cfg.to_json()) == cfg

    def test_json_is_canonical(self):
        text = RunConfig("fig1").to_json()
        assert text == json.dumps(json.loads(text), sort_keys=True, separators=(",", ":"))

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown RunConfig field"):
            RunConfig.from_dict({"experiment": "fig1", "warp_factor": 9})

    def test_bad_payload_types_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig.from_dict(["fig1"])
        with pytest.raises(ConfigError, match="does not parse"):
            RunConfig.from_json("{not json")


class TestSweepConfigValidation:
    def test_needs_at_least_one_run(self):
        with pytest.raises(ConfigError, match="at least one run"):
            SweepConfig(runs=())

    def test_runs_coerced_from_names_and_dicts(self):
        cfg = SweepConfig(runs=("fig1", {"experiment": "fig2", "quick": True}))
        assert cfg.runs == (RunConfig("fig1"), RunConfig("fig2", quick=True))

    @pytest.mark.parametrize("field,value", [
        ("jobs", 0),
        ("retries", -1),
        ("timeout", 0),
        ("timeout", -3.0),
        ("quarantine_after", 0),
        ("backoff_base", -0.1),
        ("base_seed", None),
        ("schema", 99),
    ])
    def test_bad_field_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            SweepConfig(runs=("fig1",), **{field: value})

    def test_policy_adapter_maps_every_knob(self):
        cfg = SweepConfig(
            runs=("fig1",), timeout=30.0, retries=2, quarantine=True,
            quarantine_after=5, backoff_base=0.2, backoff_cap=9.0,
            backoff_jitter=0.0, isolate=True,
        )
        policy = cfg.policy()
        assert policy.timeout == 30.0
        assert policy.max_retries == 2
        assert policy.quarantine is True
        assert policy.quarantine_after == 5
        assert policy.backoff_base == 0.2
        assert policy.backoff_cap == 9.0
        assert policy.backoff_jitter == 0.0
        assert policy.isolate is True


class TestSweepConfigSerialisation:
    def test_round_trip_is_exact(self):
        cfg = SweepConfig(
            runs=(RunConfig("fig1", seed=1), RunConfig("fig2", quick=True)),
            base_seed=7, jobs=3, cache_dir="/tmp/cache", timeout=12.5,
            retries=1, quarantine=True, quarantine_after=4, resume=True,
        )
        assert SweepConfig.from_dict(cfg.to_dict()) == cfg
        assert SweepConfig.from_json(cfg.to_json()) == cfg

    def test_nested_runs_serialise_as_dicts(self):
        payload = SweepConfig(runs=("fig1",)).to_dict()
        assert payload["runs"] == [RunConfig("fig1").to_dict()]
        assert json.dumps(payload)  # whole payload is JSON-able

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown SweepConfig field"):
            SweepConfig.from_dict({"runs": ["fig1"], "warp_factor": 9})
