"""Tests for repro.utils.rng."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import (
    derive_seed,
    ensure_rng,
    random_permutation,
    random_prefix,
    spawn,
    substream,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).integers(0, 1 << 30, size=5)
        b = ensure_rng(7).integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert ensure_rng(g) is g

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(ensure_rng(0), 5)
        assert len(children) == 5

    def test_spawn_zero(self):
        assert spawn(ensure_rng(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)

    def test_children_are_independent_streams(self):
        a, b = spawn(ensure_rng(0), 2)
        xa = a.integers(0, 1 << 30, size=16)
        xb = b.integers(0, 1 << 30, size=16)
        assert not np.array_equal(xa, xb)

    def test_spawn_deterministic_from_seed(self):
        xa = spawn(ensure_rng(3), 2)[0].integers(0, 1 << 30, size=4)
        xb = spawn(ensure_rng(3), 2)[0].integers(0, 1 << 30, size=4)
        assert np.array_equal(xa, xb)


class TestRandomPrefix:
    def test_prefix_length_and_membership(self):
        items = list(range(50))
        pre = random_prefix(items, 10, ensure_rng(0))
        assert pre.shape == (10,)
        assert set(pre.tolist()) <= set(items)
        assert len(set(pre.tolist())) == 10  # distinct

    def test_full_prefix_is_permutation(self):
        items = list(range(20))
        pre = random_prefix(items, 20, ensure_rng(1))
        assert sorted(pre.tolist()) == items

    def test_empty_prefix(self):
        assert random_prefix([1, 2, 3], 0, ensure_rng(0)).shape == (0,)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            random_prefix([1, 2], 3, ensure_rng(0))
        with pytest.raises(ValueError):
            random_prefix([1, 2], -1, ensure_rng(0))

    def test_uniformity_of_first_element(self):
        # each item should lead the prefix ~uniformly
        rng = ensure_rng(0)
        counts = np.zeros(4)
        for _ in range(4000):
            counts[random_prefix([0, 1, 2, 3], 2, rng)[0]] += 1
        assert counts.min() > 800  # expected 1000 each

    @given(st.integers(1, 30), st.data())
    def test_prefix_always_distinct(self, n, data):
        m = data.draw(st.integers(0, n))
        pre = random_prefix(list(range(n)), m, ensure_rng(0))
        assert len(set(pre.tolist())) == m


class TestRandomPermutation:
    def test_is_permutation(self):
        perm = random_permutation(list(range(31)), ensure_rng(5))
        assert sorted(perm.tolist()) == list(range(31))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "sweep", "fig2") == derive_seed(0, "sweep", "fig2")

    def test_keyed_not_sequential(self):
        # depends only on (seed, key path), not on prior derivations
        first = derive_seed(0, "a")
        derive_seed(0, "b")
        derive_seed(0, "c")
        assert derive_seed(0, "a") == first

    def test_distinct_across_key_parts_and_seeds(self):
        seeds = {
            derive_seed(0, "a"),
            derive_seed(0, "b"),
            derive_seed(0, "a", 0),
            derive_seed(0, "a", 1),
            derive_seed(1, "a"),
        }
        assert len(seeds) == 5

    def test_int_and_str_keys_compose(self):
        assert derive_seed(0, "step", 3) == derive_seed(0, "step", 3)
        assert derive_seed(0, "step", 3) != derive_seed(0, "step", "3")

    def test_returns_python_int_in_uint64_range(self):
        s = derive_seed(12345, "x")
        assert isinstance(s, int)
        assert 0 <= s < 2**64


class TestSubstream:
    def test_reproducible(self):
        a = substream(0, "ordered-step", 2).random(6)
        b = substream(0, "ordered-step", 2).random(6)
        assert np.array_equal(a, b)

    def test_independent_of_other_streams_draws(self):
        # draining one substream never shifts a sibling
        noisy = substream(0, "ordered-step", 0)
        noisy.random(1000)
        a = substream(0, "ordered-step", 1).random(6)
        b = substream(0, "ordered-step", 1).random(6)
        assert np.array_equal(a, b)

    def test_distinct_keys_give_distinct_streams(self):
        a = substream(0, "ordered-step", 0).random(8)
        b = substream(0, "ordered-step", 1).random(8)
        c = substream(0, "other", 0).random(8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_returns_fresh_generator(self):
        a = substream(0, "k")
        b = substream(0, "k")
        assert isinstance(a, np.random.Generator)
        assert a is not b
