"""Tests for repro.utils.svgplot."""

import math
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ReproError
from repro.utils.svgplot import LinePlot, _nice_ticks

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestNiceTicks:
    def test_unit_interval(self):
        ticks = _nice_ticks(0.0, 1.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 1.0
        assert len(ticks) >= 3
        steps = {round(b - a, 12) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1  # uniform spacing

    def test_125_progression(self):
        step = _nice_ticks(0, 100)[1] - _nice_ticks(0, 100)[0]
        mantissa = step / (10 ** math.floor(math.log10(step)))
        assert round(mantissa, 6) in (1.0, 2.0, 5.0)

    def test_degenerate_range(self):
        assert _nice_ticks(5.0, 5.0)  # must not raise or return empty


class TestLinePlot:
    def test_valid_xml_with_polylines(self):
        plot = LinePlot(title="t", xlabel="x", ylabel="y")
        plot.add_series("a", [1, 2, 3], [1.0, 4.0, 9.0])
        plot.add_series("b", [1, 2, 3], [2.0, 3.0, 4.0], dashed=True)
        root = parse(plot.render())
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 2
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        assert "a" in texts and "b" in texts and "t" in texts

    def test_points_inside_canvas(self):
        plot = LinePlot(width=400, height=300)
        plot.add_series("s", [0, 50, 100], [-5.0, 0.0, 5.0])
        root = parse(plot.render())
        for poly in root.findall(f".//{SVG_NS}polyline"):
            for pair in poly.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= 400 and 0 <= y <= 300

    def test_log_x_axis(self):
        plot = LinePlot(log_x=True)
        plot.add_series("s", [1, 10, 100, 1000], [1.0, 2.0, 3.0, 4.0])
        svg = plot.render()
        root = parse(svg)
        labels = {t.text for t in root.findall(f".//{SVG_NS}text")}
        assert {"1", "10", "100", "1000"} <= labels
        # equal spacing between decades
        poly = root.find(f".//{SVG_NS}polyline")
        xs = [float(p.split(",")[0]) for p in poly.get("points").split()]
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert max(gaps) - min(gaps) < 0.5

    def test_log_x_rejects_nonpositive(self):
        plot = LinePlot(log_x=True)
        with pytest.raises(ReproError):
            plot.add_series("s", [0, 1], [1.0, 2.0])

    def test_empty_plot_rejected(self):
        with pytest.raises(ReproError):
            LinePlot().render()

    def test_length_mismatch_rejected(self):
        plot = LinePlot()
        with pytest.raises(ReproError):
            plot.add_series("s", [1], [1.0, 2.0])

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ReproError):
            LinePlot(width=10, height=10)

    def test_title_escaping(self):
        plot = LinePlot(title="a < b & c")
        plot.add_series("s", [1, 2], [1.0, 2.0])
        root = parse(plot.render())  # would raise on bad escaping
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        assert "a < b & c" in texts

    def test_save(self, tmp_path):
        plot = LinePlot()
        plot.add_series("s", [1, 2], [3.0, 4.0])
        out = tmp_path / "plot.svg"
        plot.save(out)
        assert out.read_text().startswith("<svg")

    def test_constant_series_renders(self):
        plot = LinePlot()
        plot.add_series("flat", [1, 2, 3], [5.0, 5.0, 5.0])
        parse(plot.render())
