"""Tests for repro.utils.timing."""

import time

from repro.utils.timing import StageTimer, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first


class TestStageTimer:
    def test_accumulates_per_stage(self):
        st = StageTimer()
        with st.stage("a"):
            time.sleep(0.005)
        with st.stage("a"):
            time.sleep(0.005)
        with st.stage("b"):
            pass
        assert st.count("a") == 2
        assert st.count("b") == 1
        assert st.total("a") >= 0.009
        assert st.total("missing") == 0.0

    def test_report_sorted_desc(self):
        st = StageTimer()
        with st.stage("slow"):
            time.sleep(0.01)
        with st.stage("fast"):
            pass
        keys = list(st.report())
        assert keys[0] == "slow"

    def test_exception_still_recorded(self):
        st = StageTimer()
        try:
            with st.stage("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert st.count("x") == 1
