"""Tests for repro.utils.finite_diff."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.finite_diff import (
    binomial_difference,
    forward_difference,
    forward_difference_array,
    is_convex,
    is_nondecreasing,
)


def square(k: int) -> float:
    return float(k * k)


class TestForwardDifference:
    def test_order_zero_is_identity(self):
        assert forward_difference(square, 3, order=0) == 9.0

    def test_first_difference_of_square(self):
        # Δ(k²) = 2k + 1
        assert forward_difference(square, 4) == 9.0

    def test_second_difference_of_square_is_constant(self):
        for k in range(5):
            assert forward_difference(square, k, order=2) == 2.0

    def test_third_difference_of_square_is_zero(self):
        assert forward_difference(square, 1, order=3) == 0.0

    def test_negative_order_raises(self):
        with pytest.raises(ValueError):
            forward_difference(square, 0, order=-1)

    @given(st.integers(-20, 20), st.integers(0, 5))
    def test_matches_binomial_expansion(self, k, order):
        def f(x: int) -> float:
            return float(x**3 - 2 * x + 1)

        rec = forward_difference(f, k, order)
        binom = binomial_difference(f, k, order)
        assert rec == pytest.approx(binom, abs=1e-9)


class TestForwardDifferenceArray:
    def test_matches_pointwise(self):
        vals = np.array([square(k) for k in range(10)])
        diffs = forward_difference_array(vals, 1)
        assert np.array_equal(diffs, np.array([2 * k + 1 for k in range(9)]))

    def test_order_zero_copies(self):
        vals = np.arange(4.0)
        out = forward_difference_array(vals, 0)
        out[0] = 99
        assert vals[0] == 0.0

    def test_too_few_samples_gives_empty(self):
        assert forward_difference_array(np.array([1.0]), 2).shape == (0,)

    def test_negative_order_raises(self):
        with pytest.raises(ValueError):
            forward_difference_array(np.array([1.0, 2.0]), -1)


class TestPredicates:
    def test_nondecreasing_true(self):
        assert is_nondecreasing(np.array([1.0, 1.0, 2.0, 5.0]))

    def test_nondecreasing_false(self):
        assert not is_nondecreasing(np.array([1.0, 0.5]))

    def test_nondecreasing_tolerance(self):
        assert is_nondecreasing(np.array([1.0, 1.0 - 1e-12]), atol=1e-9)

    def test_convex_square(self):
        assert is_convex(np.array([square(k) for k in range(8)], dtype=float))

    def test_concave_not_convex(self):
        assert not is_convex(np.array([0.0, 3.0, 4.0, 4.5]))

    def test_short_sequences_trivially_convex(self):
        assert is_convex(np.array([1.0, 2.0]))
        assert is_nondecreasing(np.array([]))
