"""Tests for repro.utils.tables."""

import math

import pytest

from repro.utils.tables import format_series, format_table, sparkline


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_title_is_first_line(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]], float_fmt=".2f")
        assert "0.12" in out

    def test_nan_rendering(self):
        assert "nan" in format_table(["v"], [[float("nan")]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert len(out.splitlines()) == 2


class TestSparkline:
    def test_monotone_shape(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_becomes_space(self):
        assert sparkline([0.0, math.nan, 1.0])[1] == " "


class TestFormatSeries:
    def test_contains_name_and_points(self):
        out = format_series("curve", [0, 1, 2], [5.0, 6.0, 7.0])
        assert out.startswith("curve:")
        assert "(0, 5)" in out and "(2, 7)" in out

    def test_subsampling_keeps_last_point(self):
        xs = list(range(100))
        out = format_series("s", xs, [float(x) for x in xs], max_points=5)
        assert "(99, 99)" in out

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1.0, 2.0])

    def test_empty_series(self):
        assert "empty" in format_series("s", [], [])
