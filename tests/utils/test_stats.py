"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy.stats import hypergeom

from repro.utils.stats import (
    MeanCI,
    RunningStats,
    hypergeom_miss_probability,
    mean_ci,
)


class TestRunningStats:
    def test_matches_numpy(self, rng):
        xs = rng.normal(size=500)
        rs = RunningStats()
        for x in xs:
            rs.push(float(x))
        assert rs.count == 500
        assert rs.mean == pytest.approx(xs.mean())
        assert rs.variance == pytest.approx(xs.var(ddof=1))
        assert rs.min == pytest.approx(xs.min())
        assert rs.max == pytest.approx(xs.max())

    def test_push_many_equals_push(self, rng):
        xs = rng.normal(size=200)
        a, b = RunningStats(), RunningStats()
        for x in xs:
            a.push(float(x))
        b.push_many(xs)
        assert b.mean == pytest.approx(a.mean)
        assert b.variance == pytest.approx(a.variance)

    def test_merge_equals_sequential(self, rng):
        xs = rng.normal(size=100)
        ys = rng.normal(size=57)
        a = RunningStats()
        a.push_many(xs)
        b = RunningStats()
        b.push_many(ys)
        a.merge(b)
        ref = RunningStats()
        ref.push_many(np.concatenate([xs, ys]))
        assert a.count == ref.count
        assert a.mean == pytest.approx(ref.mean)
        assert a.variance == pytest.approx(ref.variance)

    def test_merge_into_empty(self):
        a = RunningStats()
        b = RunningStats()
        b.push(3.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 3.0

    def test_empty_stats_are_nan(self):
        rs = RunningStats()
        assert math.isnan(rs.mean)
        assert math.isnan(rs.variance)

    def test_single_observation_variance_nan(self):
        rs = RunningStats()
        rs.push(1.0)
        assert math.isnan(rs.variance)
        assert math.isnan(rs.sem)

    def test_sem_scaling(self, rng):
        xs = rng.normal(size=400)
        rs = RunningStats()
        rs.push_many(xs)
        assert rs.sem == pytest.approx(xs.std(ddof=1) / 20.0)


class TestMeanCI:
    def test_interval_contains_mean(self):
        ci = mean_ci(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ci.low < ci.mean < ci.high
        assert ci.contains(2.5)

    def test_empty_is_nan_inf(self):
        ci = mean_ci(np.array([]))
        assert math.isnan(ci.mean) and math.isinf(ci.half_width)

    def test_single_sample_infinite_width(self):
        ci = mean_ci(np.array([5.0]))
        assert ci.mean == 5.0 and math.isinf(ci.half_width)
        assert ci.contains(1e9)

    def test_width_shrinks_with_samples(self, rng):
        small = mean_ci(rng.normal(size=50))
        large = mean_ci(rng.normal(size=5000))
        assert large.half_width < small.half_width

    def test_z_scales_width(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        assert mean_ci(xs, z=2.0).half_width == pytest.approx(
            2 * mean_ci(xs, z=1.0).half_width
        )

    def test_str_contains_numbers(self):
        assert "n=4" in str(mean_ci(np.arange(4.0)))

    def test_meanci_direct(self):
        ci = MeanCI(1.0, 0.5, 10)
        assert ci.low == 0.5 and ci.high == 1.5


class TestHypergeomMiss:
    @given(st.integers(1, 60), st.data())
    def test_matches_scipy(self, n, data):
        block = data.draw(st.integers(0, n))
        m = data.draw(st.integers(0, n))
        ours = hypergeom_miss_probability(n, block, m)
        # P[X = 0] for X ~ Hypergeom(n, block, m)
        ref = float(hypergeom.pmf(0, n, block, m))
        assert ours == pytest.approx(ref, abs=1e-12)

    def test_zero_sample(self):
        assert hypergeom_miss_probability(10, 3, 0) == 1.0

    def test_zero_block(self):
        assert hypergeom_miss_probability(10, 0, 5) == 1.0

    def test_impossible_miss(self):
        assert hypergeom_miss_probability(10, 3, 8) == 0.0

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            hypergeom_miss_probability(10, 11, 2)
        with pytest.raises(ValueError):
            hypergeom_miss_probability(10, 2, 11)
