"""Documentation hygiene tests."""

import importlib
import inspect
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestApiReference:
    def test_api_md_is_fresh(self):
        """docs/api.md must match the current public surface."""
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import gen_api_docs

            assert gen_api_docs.main(["--check"]) == 0
        finally:
            sys.path.pop(0)


class TestDocstringCoverage:
    @pytest.mark.parametrize(
        "pkg_name",
        [
            "repro.graph",
            "repro.model",
            "repro.runtime",
            "repro.control",
            "repro.apps",
            "repro.utils",
        ],
    )
    def test_every_public_item_documented(self, pkg_name):
        """Everything in __all__ carries a docstring."""
        pkg = importlib.import_module(pkg_name)
        undocumented = []
        for name in getattr(pkg, "__all__", []):
            obj = getattr(pkg, name)
            if callable(obj) and not inspect.getdoc(obj):
                undocumented.append(name)
        assert not undocumented, f"{pkg_name}: missing docstrings: {undocumented}"

    def test_public_classes_document_public_methods(self):
        """Spot-check: core classes have fully documented public methods."""
        from repro.control import HybridController
        from repro.graph import CCGraph
        from repro.runtime import OptimisticEngine

        for cls in (CCGraph, OptimisticEngine, HybridController):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if not member.__qualname__.startswith(cls.__name__):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name} undocumented"


class TestRepoFiles:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/theory.md", "docs/architecture.md"],
    )
    def test_required_docs_exist_and_nontrivial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text(encoding="utf-8")) > 500, f"{name} looks stubby"

    def test_examples_present(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert (REPO / "examples" / "quickstart.py").exists()
