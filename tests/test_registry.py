"""Plugin registry: lookup errors, duplicate protection, third-party entries."""

import pytest

import repro
from repro.config import RunConfig
from repro.errors import RegistryError, ReproError
from repro.registry import (
    CONTROLLERS,
    EXPERIMENTS,
    Registry,
    register,
    registry,
)


class TestRegistryBasics:
    def test_unknown_name_lists_available_entries(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        reg.register("beta", lambda: 2)
        with pytest.raises(RegistryError, match=r"unknown widget 'gamma'") as exc:
            reg.get("gamma")
        # the error is the documentation: every entry, sorted
        assert "alpha, beta" in str(exc.value)

    def test_unknown_name_on_empty_registry(self):
        reg = Registry("widget")
        with pytest.raises(RegistryError, match=r"\(none registered\)"):
            reg.get("anything")

    def test_duplicate_registration_raises(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("alpha", lambda: 2)
        # the original entry survives the rejected overwrite
        assert reg.create("alpha") == 1

    def test_overwrite_replaces_deliberately(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        reg.register("alpha", lambda: 2, overwrite=True)
        assert reg.create("alpha") == 2

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("alpha")
        def make():
            return "made"

        assert make() == "made"  # the decorator returns the factory unchanged
        assert reg.create("alpha") == "made"

    def test_bad_names_and_factories_rejected(self):
        reg = Registry("widget")
        with pytest.raises(RegistryError, match="non-empty string"):
            reg.register("", lambda: 1)
        with pytest.raises(RegistryError, match="must be callable"):
            reg.register("alpha", 42)

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        reg.unregister("alpha")
        assert "alpha" not in reg
        with pytest.raises(RegistryError, match="unknown widget"):
            reg.unregister("alpha")

    def test_mapping_protocol(self):
        reg = Registry("widget")
        reg.register("beta", lambda: 2)
        reg.register("alpha", lambda: 1)
        assert list(reg) == ["alpha", "beta"]  # sorted
        assert len(reg) == 2
        assert "alpha" in reg and "gamma" not in reg

    def test_registry_error_is_a_value_error(self):
        # callers using the historical except-ValueError contract keep working
        assert issubclass(RegistryError, ValueError)
        assert issubclass(RegistryError, ReproError)


class TestBuiltinRegistries:
    def test_kind_lookup(self):
        assert registry("controller") is CONTROLLERS
        with pytest.raises(RegistryError, match="unknown registry kind"):
            registry("nonsense")

    def test_builtin_entries_present(self):
        assert "hybrid" in CONTROLLERS
        assert "fig1" in EXPERIMENTS
        assert "unordered" in registry("order-policy")
        assert "item-lock" in registry("conflict-policy")
        assert "replay" in registry("workload")
        assert "optimistic" in registry("engine")

    def test_lazy_population_repr(self):
        reg = Registry("widget", populate=lambda r: r.register("a", lambda: 1))
        assert "unpopulated" in repr(reg)
        assert "a" in reg
        assert "1 entries" in repr(reg)


class TestThirdPartyRoundTrip:
    def test_registered_experiment_runs_through_api(self):
        calls = []

        @register("experiment", "test-registry-exp")
        def _factory(seed, quick):
            calls.append((seed, quick))
            return {"seed": seed, "quick": quick}

        try:
            out = repro.run(RunConfig(experiment="test-registry-exp", seed=7, quick=True))
        finally:
            EXPERIMENTS.unregister("test-registry-exp")
        assert calls == [(7, True)]
        assert out == {"seed": 7, "quick": True}

    def test_registered_controller_runs_through_api(self, small_graph):
        from repro.control.fixed import FixedController

        seen = []

        def _factory(config):
            seen.append(config.rho)
            return FixedController(4)

        register("controller", "test-registry-ctl", _factory)
        try:
            result = repro.run(
                RunConfig(
                    workload="consuming",
                    controller="test-registry-ctl",
                    rho=0.3,
                    seed=0,
                ),
                graph=small_graph,
            )
        finally:
            CONTROLLERS.unregister("test-registry-ctl")
        assert seen == [0.3]
        assert result.total_committed > 0

    def test_unknown_experiment_through_run_experiment(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("no-such-experiment")


@pytest.fixture
def small_graph():
    from repro.graph.generators import random_regular

    return random_regular(n=60, d=4, seed=0)
