"""Tests for repro.graph.ccgraph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph.ccgraph import CCGraph


class TestBasicOperations:
    def test_add_nodes_sequential_ids(self):
        g = CCGraph()
        assert [g.add_node() for _ in range(3)] == [0, 1, 2]
        assert g.num_nodes == 3

    def test_node_ids_never_reused(self):
        g = CCGraph()
        g.add_node()
        g.remove_node(0)
        assert g.add_node() == 1

    def test_add_edge_and_query(self, small_graph):
        assert small_graph.has_edge(0, 1)
        assert small_graph.has_edge(1, 0)
        assert not small_graph.has_edge(0, 4)

    def test_add_edge_idempotent(self):
        g = CCGraph.from_edges(2, [(0, 1)])
        g.add_edge(0, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = CCGraph.from_edges(1, [])
        with pytest.raises(GraphError):
            g.add_edge(0, 0)

    def test_edge_to_missing_node_raises(self):
        g = CCGraph.from_edges(2, [])
        with pytest.raises(NodeNotFoundError):
            g.add_edge(0, 9)

    def test_remove_edge(self):
        g = CCGraph.from_edges(3, [(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = CCGraph.from_edges(2, [])
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(0, 1)

    def test_remove_node_cleans_edges(self, small_graph):
        small_graph.remove_node(2)
        assert 2 not in small_graph
        assert small_graph.num_edges == 4  # 0-1, 3-4, 4-5, 3-5
        assert not small_graph.has_edge(0, 2)

    def test_remove_missing_node_raises(self):
        g = CCGraph()
        with pytest.raises(NodeNotFoundError):
            g.remove_node(0)

    def test_degree_and_neighbors(self, small_graph):
        assert small_graph.degree(2) == 3
        assert small_graph.neighbors(2) == frozenset({0, 1, 3})
        with pytest.raises(NodeNotFoundError):
            small_graph.degree(99)

    def test_average_degree(self, small_graph):
        assert small_graph.average_degree == pytest.approx(14 / 6)
        assert CCGraph().average_degree == 0.0

    def test_len_iter_contains(self, small_graph):
        assert len(small_graph) == 6
        assert set(small_graph) == set(range(6))
        assert 3 in small_graph and 17 not in small_graph

    def test_edges_reported_once(self, small_graph):
        edges = small_graph.edges()
        assert len(edges) == 7
        assert all(u < v for u, v in edges)


class TestPayloads:
    def test_data_roundtrip(self):
        g = CCGraph()
        nid = g.add_node(data={"x": 1})
        assert g.get_data(nid) == {"x": 1}
        g.set_data(nid, "other")
        assert g.get_data(nid) == "other"

    def test_data_none_by_default(self):
        g = CCGraph.from_edges(1, [])
        assert g.get_data(0) is None

    def test_data_on_missing_node_raises(self):
        g = CCGraph()
        with pytest.raises(NodeNotFoundError):
            g.get_data(0)
        with pytest.raises(NodeNotFoundError):
            g.set_data(0, 1)

    def test_data_removed_with_node(self):
        g = CCGraph()
        nid = g.add_node(data=42)
        g.remove_node(nid)
        nid2 = g.add_node()
        assert g.get_data(nid2) is None


class TestDerivedStructures:
    def test_copy_is_independent(self, small_graph):
        clone = small_graph.copy()
        clone.remove_node(0)
        assert 0 in small_graph
        assert small_graph.num_edges == 7

    def test_copy_preserves_next_id(self, small_graph):
        clone = small_graph.copy()
        assert clone.add_node() == small_graph.add_node()

    def test_induced_subgraph(self, small_graph):
        sub = small_graph.induced_subgraph([0, 1, 2, 3])
        assert sub.num_nodes == 4
        assert sub.num_edges == 4  # 0-1, 0-2, 1-2, 2-3
        assert not sub.has_edge(3, 4) if 4 in sub else True

    def test_induced_subgraph_missing_node_raises(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            small_graph.induced_subgraph([0, 99])

    def test_snapshot_matches_graph(self, medium_random_graph):
        g = medium_random_graph
        snap = g.snapshot()
        assert snap.num_nodes == g.num_nodes
        assert snap.num_edges == g.num_edges
        assert snap.average_degree == pytest.approx(g.average_degree)
        # spot-check adjacency round trip
        index_of = {int(n): i for i, n in enumerate(snap.node_ids)}
        for u in list(g)[:20]:
            neigh = {int(snap.node_ids[j]) for j in snap.neighbors(index_of[u])}
            assert neigh == set(g.neighbors(u))

    def test_snapshot_degrees(self, small_graph):
        snap = small_graph.snapshot()
        degs = {int(n): int(d) for n, d in zip(snap.node_ids, snap.degrees)}
        assert degs[2] == 3 and degs[0] == 2

    def test_to_networkx(self, small_graph):
        nxg = small_graph.to_networkx()
        assert nxg.number_of_nodes() == 6
        assert nxg.number_of_edges() == 7

    def test_from_networkx_roundtrip(self, small_graph):
        back = CCGraph.from_networkx(small_graph.to_networkx())
        assert back.num_nodes == small_graph.num_nodes
        assert sorted(back.edges()) == sorted(small_graph.edges())

    def test_from_networkx_arbitrary_labels(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("alpha", "beta")
        nxg.add_edge("beta", "gamma")
        nxg.add_edge("alpha", "alpha")  # self-loop must be dropped
        g = CCGraph.from_networkx(nxg)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_networkx_deterministic(self):
        import networkx as nx

        nxg = nx.gnm_random_graph(20, 40, seed=3)
        a = CCGraph.from_networkx(nxg)
        b = CCGraph.from_networkx(nxg)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_repr(self, small_graph):
        assert "n=6" in repr(small_graph)


@st.composite
def graph_operations(draw):
    """A random sequence of graph mutations."""
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["add_node", "add_edge", "remove_node"]),
                      st.integers(0, 30), st.integers(0, 30)),
            min_size=1,
            max_size=60,
        )
    )
    return ops


class TestInvariantsPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(graph_operations())
    def test_edge_count_always_consistent(self, ops):
        g = CCGraph()
        for op, a, b in ops:
            if op == "add_node":
                g.add_node()
            elif op == "add_edge" and a in g and b in g and a != b:
                g.add_edge(a, b)
            elif op == "remove_node" and a in g:
                g.remove_node(a)
        # invariant: num_edges equals the recount and adjacency is symmetric
        assert g.num_edges == len(g.edges())
        for u in g:
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    @settings(max_examples=30, deadline=None)
    @given(graph_operations())
    def test_snapshot_roundtrip_any_graph(self, ops):
        g = CCGraph()
        for op, a, b in ops:
            if op == "add_node":
                g.add_node()
            elif op == "add_edge" and a in g and b in g and a != b:
                g.add_edge(a, b)
            elif op == "remove_node" and a in g:
                g.remove_node(a)
        snap = g.snapshot()
        assert snap.num_nodes == g.num_nodes
        assert snap.num_edges == g.num_edges
        assert int(snap.indptr[-1]) == snap.indices.shape[0]
        if snap.num_nodes:
            assert np.array_equal(np.sort(np.diff(snap.indptr)), np.sort(snap.degrees))
