"""Tests for repro.graph.generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeneratorError
from repro.graph.generators import (
    clique_plus_isolated,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnm_random,
    gnp_random,
    grid_graph,
    kdn_worst_case,
    path_graph,
    powerlaw_graph,
    random_geometric,
    random_regular,
    union_of_cliques,
)


class TestDeterministicFamilies:
    def test_empty(self):
        g = empty_graph(5)
        assert g.num_nodes == 5 and g.num_edges == 0

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(u) == 5 for u in g)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(u) == 2 for u in g)

    def test_cycle_small_degenerates_to_path(self):
        assert cycle_graph(2).num_edges == 1
        assert cycle_graph(1).num_edges == 0

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.degree(0) == 2  # corner

    def test_zero_sizes(self):
        assert empty_graph(0).num_nodes == 0
        assert grid_graph(0, 5).num_nodes == 0
        assert path_graph(0).num_nodes == 0

    def test_negative_raises(self):
        for fn in (empty_graph, complete_graph, path_graph, cycle_graph):
            with pytest.raises(GeneratorError):
                fn(-1)


class TestCliqueFamilies:
    def test_union_of_cliques_structure(self):
        g = union_of_cliques(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 6
        assert all(g.degree(u) == 3 for u in g)
        # no edges between cliques
        assert not g.has_edge(0, 4)

    def test_kdn_worst_case(self):
        g = kdn_worst_case(170, 16)
        assert g.num_nodes == 170
        assert g.average_degree == pytest.approx(16.0)

    def test_kdn_divisibility_enforced(self):
        with pytest.raises(GeneratorError):
            kdn_worst_case(100, 16)

    def test_kdn_degree_too_big(self):
        with pytest.raises(GeneratorError):
            kdn_worst_case(4, 5)

    def test_clique_plus_isolated(self):
        g = clique_plus_isolated(9, 3)  # Example 1 with n=3
        assert g.num_nodes == 12
        assert g.num_edges == 36
        assert g.degree(9) == 0 and g.degree(0) == 8

    def test_clique_plus_isolated_negative(self):
        with pytest.raises(GeneratorError):
            clique_plus_isolated(-1, 0)


class TestRandomFamilies:
    def test_gnm_edge_count_and_degree(self):
        g = gnm_random(500, 10, seed=0)
        assert g.num_nodes == 500
        assert g.num_edges == 2500
        assert g.average_degree == pytest.approx(10.0)

    def test_gnm_deterministic_by_seed(self):
        a = gnm_random(100, 6, seed=42)
        b = gnm_random(100, 6, seed=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_gnm_edges_distinct_and_valid(self):
        g = gnm_random(60, 8, seed=1)
        edges = g.edges()
        assert len(edges) == len(set(edges))
        assert all(0 <= u < 60 and 0 <= v < 60 and u != v for u, v in edges)

    def test_gnm_full_density(self):
        g = gnm_random(10, 9, seed=2)  # all 45 edges
        assert g.num_edges == 45

    def test_gnm_too_many_edges_raises(self):
        with pytest.raises(GeneratorError):
            gnm_random(10, 20, seed=0)

    def test_gnp_extremes(self):
        assert gnp_random(20, 0.0, seed=0).num_edges == 0
        assert gnp_random(8, 1.0, seed=0).num_edges == 28

    def test_gnp_density_near_expectation(self):
        g = gnp_random(400, 0.05, seed=3)
        expected = 0.05 * 400 * 399 / 2
        assert abs(g.num_edges - expected) < 4 * np.sqrt(expected)

    def test_gnp_bad_probability(self):
        with pytest.raises(GeneratorError):
            gnp_random(10, 1.5)

    def test_random_regular_small_degree(self):
        g = random_regular(50, 3, seed=4)
        assert all(g.degree(u) == 3 for u in g)

    def test_random_regular_large_degree_via_networkx(self):
        g = random_regular(120, 16, seed=5)
        assert all(g.degree(u) == 16 for u in g)

    def test_random_regular_parity_check(self):
        with pytest.raises(GeneratorError):
            random_regular(5, 3)

    def test_random_regular_degree_too_big(self):
        with pytest.raises(GeneratorError):
            random_regular(4, 4)

    def test_random_regular_zero_degree(self):
        assert random_regular(5, 0).num_edges == 0

    def test_random_geometric_edges_within_radius(self):
        g = random_geometric(200, 0.08, seed=6)
        for u, v in g.edges():
            pu, pv = g.get_data(u), g.get_data(v)
            dist = ((pu[0] - pv[0]) ** 2 + (pu[1] - pv[1]) ** 2) ** 0.5
            assert dist <= 0.08 + 1e-12

    def test_random_geometric_completeness(self):
        # every within-radius pair must be an edge
        g = random_geometric(80, 0.15, seed=7)
        pts = [g.get_data(u) for u in range(80)]
        for u in range(80):
            for v in range(u + 1, 80):
                d = ((pts[u][0] - pts[v][0]) ** 2 + (pts[u][1] - pts[v][1]) ** 2) ** 0.5
                assert g.has_edge(u, v) == (d <= 0.15)

    def test_powerlaw_basic(self):
        g = powerlaw_graph(200, 3, seed=8)
        assert g.num_nodes == 200
        # every late node attaches to exactly 3 targets
        assert g.num_edges == 6 + (200 - 4) * 3
        degs = sorted(g.degree(u) for u in g)
        assert degs[-1] > degs[len(degs) // 2]  # skewed

    def test_powerlaw_tiny_n(self):
        g = powerlaw_graph(3, 4, seed=9)
        assert g.num_edges == 3  # complete

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 80), st.integers(0, 8))
    def test_gnm_average_degree_property(self, n, d):
        d = min(d, n - 1)
        g = gnm_random(n, d, seed=0)
        assert g.num_edges == int(round(n * d / 2))
