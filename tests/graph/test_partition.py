"""Property tests for the edge-cut partitioner and two-phase commit rule.

Hypothesis drives random graphs, shard counts, morph sequences and batch
orders through three invariant families:

* **totality** — every live node belongs to exactly one shard, before
  and after arbitrary morph sequences (the assignment is a total
  function over node ids, not a snapshot);
* **halo vocabulary** — ``boundary``/``halo``/``edge_split`` agree with
  their independently computed set definitions;
* **two-phase resolution** — the vectorised
  :func:`two_phase_commit_mask_fast` equals the reference
  :func:`two_phase_commit_mask` on morphed graphs, the composition never
  commits two adjacent batch nodes, and ``shards=1`` collapses to the
  conflict policy's plain greedy walk.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.generators import gnm_random
from repro.graph.morph import attach_clique, replace_cavity
from repro.graph.partition import (
    GraphPartition,
    partition_graph,
    two_phase_commit_mask,
    two_phase_commit_mask_fast,
)
from repro.runtime.conflict import ExplicitGraphPolicy
from repro.runtime.task import CallbackOperator, Task

OPERATOR = CallbackOperator(
    neighborhood=lambda task: {task.payload}, apply=lambda task: []
)


def _morph(graph, rng, rounds: int) -> None:
    """A random but reproducible add/remove/cavity/clique sequence."""
    for _ in range(rounds):
        move = rng.integers(0, 4)
        nodes = graph.nodes()
        if move == 0 or not nodes:
            nid = graph.add_node()
            if nodes:
                graph.add_edge(nid, int(rng.choice(nodes)))
        elif move == 1:
            graph.remove_node(int(rng.choice(nodes)))
        elif move == 2:
            anchors = rng.choice(nodes, size=min(2, len(nodes)), replace=False)
            attach_clique(graph, int(rng.integers(2, 5)), [int(a) for a in anchors])
        else:
            cavity = rng.choice(nodes, size=min(3, len(nodes)), replace=False)
            replace_cavity(graph, [int(c) for c in cavity], int(rng.integers(1, 4)))


graph_params = st.tuples(
    st.integers(2, 60),  # nodes
    st.integers(0, 6),  # average degree
    st.integers(0, 2**16),  # generator seed
)
shard_counts = st.integers(1, 6)


class TestAssignment:
    @settings(max_examples=60, deadline=None)
    @given(graph_params, shard_counts)
    def test_every_node_in_exactly_one_shard(self, params, shards):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, shards)
        owned = [part.members(graph, s) for s in range(shards)]
        flat = [n for block in owned for n in block]
        assert sorted(flat) == sorted(graph.nodes())
        assert len(flat) == len(set(flat))

    @settings(max_examples=30, deadline=None)
    @given(graph_params, shard_counts, st.integers(0, 10_000))
    def test_assignment_is_total_over_all_ids(self, params, shards, nid):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, shards)
        assert 0 <= part.shard_of(nid) < shards
        arr = part.shard_of_array(np.array([nid], dtype=np.int64))
        assert arr[0] == part.shard_of(nid)

    def test_blocks_are_balanced(self):
        graph = gnm_random(100, 6, seed=1)
        part = partition_graph(graph, 4)
        sizes = [len(part.members(graph, s)) for s in range(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_shard_counts_rejected(self):
        graph = gnm_random(10, 2, seed=0)
        with pytest.raises(GraphError):
            partition_graph(graph, 0)
        with pytest.raises(GraphError):
            GraphPartition(0, np.zeros(1, dtype=np.int64))
        part = partition_graph(graph, 2)
        with pytest.raises(GraphError):
            part.members(graph, 2)


class TestHaloVocabulary:
    @settings(max_examples=40, deadline=None)
    @given(graph_params, shard_counts)
    def test_halo_is_the_boundary_neighbourhood(self, params, shards):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, shards)
        for s in range(shards):
            members = set(part.members(graph, s))
            boundary = part.boundary(graph, s)
            halo = part.halo(graph, s)
            # boundary: own nodes with a foreign neighbour, from scratch
            assert boundary == {
                u
                for u in members
                if any(v not in members for v in graph.neighbors(u))
            }
            # halo: exactly the foreign neighbours of the boundary
            assert halo == {
                v for u in boundary for v in graph.neighbors(u) if v not in members
            }
            assert not (halo & members)

    @settings(max_examples=40, deadline=None)
    @given(graph_params, shard_counts)
    def test_edge_split_partitions_the_edge_set(self, params, shards):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, shards)
        intra, cut = part.edge_split(graph)
        count = len(cut)
        for s, pairs in intra.items():
            count += len(pairs)
            for u, v in pairs:
                assert part.shard_of(int(u)) == s == part.shard_of(int(v))
        for u, v in cut:
            assert part.shard_of(int(u)) != part.shard_of(int(v))
        assert count == graph.num_edges


class TestMorphStability:
    @settings(max_examples=30, deadline=None)
    @given(graph_params, shard_counts, st.integers(0, 2**16))
    def test_partition_survives_morph_sequences(self, params, shards, morph_seed):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, shards)
        _morph(graph, np.random.default_rng(morph_seed), rounds=8)
        # still a total assignment over the mutated node set …
        owned = [part.members(graph, s) for s in range(shards)]
        flat = [u for block in owned for u in block]
        assert sorted(flat) == sorted(graph.nodes())
        # … and the edge views still partition the mutated edge set
        intra, cut = part.edge_split(graph)
        assert sum(len(p) for p in intra.values()) + len(cut) == graph.num_edges


def _random_batch(graph, rng):
    nodes = graph.nodes()
    m = int(rng.integers(1, max(2, len(nodes) + 1)))
    picked = rng.choice(nodes, size=min(m, len(nodes)), replace=False)
    return [int(u) for u in picked]


class TestTwoPhaseResolution:
    @settings(max_examples=40, deadline=None)
    @given(graph_params, shard_counts, st.integers(0, 2**16))
    def test_fast_equals_reference_after_morphs(self, params, shards, fuzz_seed):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, shards)
        rng = np.random.default_rng(fuzz_seed)
        _morph(graph, rng, rounds=6)
        if not graph.nodes():
            return
        batch = _random_batch(graph, rng)
        final, local = two_phase_commit_mask(graph, part, batch)
        fast = two_phase_commit_mask_fast(
            graph.conflict_view(), part, np.asarray(batch, dtype=np.int64)
        )
        assert fast is not None
        np.testing.assert_array_equal(fast[0], final)
        np.testing.assert_array_equal(fast[1], local)

    @settings(max_examples=40, deadline=None)
    @given(graph_params, shard_counts, st.integers(0, 2**16))
    def test_no_two_adjacent_commits(self, params, shards, fuzz_seed):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, shards)
        rng = np.random.default_rng(fuzz_seed)
        batch = _random_batch(graph, rng)
        final, local = two_phase_commit_mask(graph, part, batch)
        committed = [u for u, ok in zip(batch, final) if ok]
        for i, u in enumerate(committed):
            for v in committed[i + 1 :]:
                assert not graph.has_edge(u, v)
        assert not np.any(final & ~local)  # final implies local

    @settings(max_examples=40, deadline=None)
    @given(graph_params, st.integers(0, 2**16))
    def test_one_shard_equals_reference_resolver(self, params, fuzz_seed):
        n, d, seed = params
        graph = gnm_random(n, min(d, n - 1), seed=seed)
        part = partition_graph(graph, 1)
        rng = np.random.default_rng(fuzz_seed)
        batch = _random_batch(graph, rng)
        final, local = two_phase_commit_mask(graph, part, batch)
        np.testing.assert_array_equal(final, local)  # no cut edges at all
        outcome = ExplicitGraphPolicy(graph).resolve(
            [Task(payload=u) for u in batch], OPERATOR
        )
        committed = {t.payload for t in outcome.committed}
        np.testing.assert_array_equal(
            final, np.array([u in committed for u in batch], dtype=bool)
        )

    def test_dead_and_duplicate_nodes_rejected(self):
        graph = gnm_random(10, 2, seed=3)
        part = partition_graph(graph, 2)
        nodes = graph.nodes()
        with pytest.raises(GraphError):
            two_phase_commit_mask(graph, part, [nodes[0], nodes[0]])
        dead = max(nodes) + 1
        with pytest.raises(GraphError):
            two_phase_commit_mask(graph, part, [dead])
