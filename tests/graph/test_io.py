"""Tests for repro.graph.io."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import gnm_random
from repro.graph.io import (
    dumps_dimacs,
    dumps_edgelist,
    loads_dimacs,
    loads_edgelist,
    read_dimacs,
    read_edgelist,
    write_dimacs,
    write_edgelist,
)


class TestRoundTrip:
    def test_dumps_loads_identity(self, small_graph):
        text = dumps_edgelist(small_graph)
        g2 = loads_edgelist(text)
        assert g2.num_nodes == small_graph.num_nodes
        assert sorted(g2.edges()) == sorted(small_graph.edges())

    def test_file_roundtrip(self, tmp_path, medium_random_graph):
        path = tmp_path / "g.edges"
        write_edgelist(medium_random_graph, path)
        g2 = read_edgelist(path)
        assert g2.num_edges == medium_random_graph.num_edges
        assert g2.num_nodes == medium_random_graph.num_nodes

    def test_remapping_after_removals(self):
        g = gnm_random(20, 4, seed=0)
        g.remove_node(3)
        g.remove_node(17)
        text = dumps_edgelist(g)
        g2 = loads_edgelist(text)
        assert g2.num_nodes == 18
        assert g2.num_edges == g.num_edges

    def test_empty_graph(self):
        from repro.graph.ccgraph import CCGraph

        text = dumps_edgelist(CCGraph())
        assert loads_edgelist(text).num_nodes == 0


class TestDimacs:
    def test_roundtrip(self, small_graph):
        g2 = loads_dimacs(dumps_dimacs(small_graph))
        assert g2.num_nodes == small_graph.num_nodes
        assert sorted(g2.edges()) == sorted(small_graph.edges())

    def test_file_roundtrip(self, tmp_path, medium_random_graph):
        path = tmp_path / "g.dimacs"
        write_dimacs(medium_random_graph, path, comment="test graph")
        g2 = read_dimacs(path)
        assert g2.num_edges == medium_random_graph.num_edges
        assert path.read_text().startswith("c test graph")

    def test_problem_line_format(self, small_graph):
        text = dumps_dimacs(small_graph)
        assert "p edge 6 7" in text

    def test_one_based_indices(self):
        g = loads_dimacs("p edge 2 1\ne 1 2\n")
        assert g.has_edge(0, 1)

    def test_comments_skipped(self):
        g = loads_dimacs("c hello\np edge 3 1\nc mid\ne 1 3\n")
        assert g.has_edge(0, 2)

    def test_col_variant_accepted(self):
        g = loads_dimacs("p col 2 1\ne 1 2\n")
        assert g.num_edges == 1

    def test_missing_problem_line(self):
        with pytest.raises(GraphError):
            loads_dimacs("e 1 2\n")
        with pytest.raises(GraphError):
            loads_dimacs("")

    def test_duplicate_problem_line(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 0\np edge 2 0\n")

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 3 2\ne 1 2\n")

    def test_out_of_range_endpoint(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\ne 1 3\n")
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\ne 0 1\n")

    def test_unknown_record(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\nx 1 2\n")

    def test_malformed_lines(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge two 1\ne 1 2\n")
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\ne 1\n")


class TestParsing:
    def test_missing_header_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("0 1\n")

    def test_bad_header_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes abc\n")

    def test_negative_node_count_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes -3\n")

    def test_comments_and_blank_lines_skipped(self):
        g = loads_edgelist("# nodes 3\n\n# a comment\n0 1\n")
        assert g.num_edges == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes 3\n0 1 2\n")

    def test_non_integer_endpoint_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes 3\n0 x\n")

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes 3\n0 3\n")
