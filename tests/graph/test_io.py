"""Tests for repro.graph.io."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import gnm_random
from repro.graph.io import (
    dumps_dimacs,
    dumps_edgelist,
    dumps_snap,
    loads_dimacs,
    loads_edgelist,
    loads_snap,
    read_dimacs,
    read_edgelist,
    read_snap,
    write_dimacs,
    write_edgelist,
    write_snap,
)


class TestRoundTrip:
    def test_dumps_loads_identity(self, small_graph):
        text = dumps_edgelist(small_graph)
        g2 = loads_edgelist(text)
        assert g2.num_nodes == small_graph.num_nodes
        assert sorted(g2.edges()) == sorted(small_graph.edges())

    def test_file_roundtrip(self, tmp_path, medium_random_graph):
        path = tmp_path / "g.edges"
        write_edgelist(medium_random_graph, path)
        g2 = read_edgelist(path)
        assert g2.num_edges == medium_random_graph.num_edges
        assert g2.num_nodes == medium_random_graph.num_nodes

    def test_remapping_after_removals(self):
        g = gnm_random(20, 4, seed=0)
        g.remove_node(3)
        g.remove_node(17)
        text = dumps_edgelist(g)
        g2 = loads_edgelist(text)
        assert g2.num_nodes == 18
        assert g2.num_edges == g.num_edges

    def test_empty_graph(self):
        from repro.graph.ccgraph import CCGraph

        text = dumps_edgelist(CCGraph())
        assert loads_edgelist(text).num_nodes == 0


class TestDimacs:
    def test_roundtrip(self, small_graph):
        g2 = loads_dimacs(dumps_dimacs(small_graph))
        assert g2.num_nodes == small_graph.num_nodes
        assert sorted(g2.edges()) == sorted(small_graph.edges())

    def test_file_roundtrip(self, tmp_path, medium_random_graph):
        path = tmp_path / "g.dimacs"
        write_dimacs(medium_random_graph, path, comment="test graph")
        g2 = read_dimacs(path)
        assert g2.num_edges == medium_random_graph.num_edges
        assert path.read_text().startswith("c test graph")

    def test_problem_line_format(self, small_graph):
        text = dumps_dimacs(small_graph)
        assert "p edge 6 7" in text

    def test_one_based_indices(self):
        g = loads_dimacs("p edge 2 1\ne 1 2\n")
        assert g.has_edge(0, 1)

    def test_comments_skipped(self):
        g = loads_dimacs("c hello\np edge 3 1\nc mid\ne 1 3\n")
        assert g.has_edge(0, 2)

    def test_col_variant_accepted(self):
        g = loads_dimacs("p col 2 1\ne 1 2\n")
        assert g.num_edges == 1

    def test_missing_problem_line(self):
        with pytest.raises(GraphError):
            loads_dimacs("e 1 2\n")
        with pytest.raises(GraphError):
            loads_dimacs("")

    def test_duplicate_problem_line(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 0\np edge 2 0\n")

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 3 2\ne 1 2\n")

    def test_out_of_range_endpoint(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\ne 1 3\n")
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\ne 0 1\n")

    def test_unknown_record(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\nx 1 2\n")

    def test_malformed_lines(self):
        with pytest.raises(GraphError):
            loads_dimacs("p edge two 1\ne 1 2\n")
        with pytest.raises(GraphError):
            loads_dimacs("p edge 2 1\ne 1\n")


class TestParsing:
    def test_missing_header_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("0 1\n")

    def test_bad_header_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes abc\n")

    def test_negative_node_count_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes -3\n")

    def test_comments_and_blank_lines_skipped(self):
        g = loads_edgelist("# nodes 3\n\n# a comment\n0 1\n")
        assert g.num_edges == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes 3\n0 1 2\n")

    def test_non_integer_endpoint_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes 3\n0 x\n")

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(GraphError):
            loads_edgelist("# nodes 3\n0 3\n")


class TestSnap:
    def test_dumps_loads_round_trip(self):
        g = gnm_random(30, 4, seed=1)
        g2 = loads_snap(dumps_snap(g))
        assert g2.num_nodes == g.num_nodes
        assert g2.num_edges == g.num_edges

    def test_header_counts_in_dump(self):
        g = gnm_random(10, 2, seed=2)
        text = dumps_snap(g, comment="test graph")
        assert f"# Nodes: {g.num_nodes} Edges: {g.num_edges}" in text
        assert text.startswith("# test graph\n")

    def test_comments_and_blank_lines_skipped(self):
        text = "# SNAP header\n% matrix-market style\n\n0\t1\n\n1\t2\n"
        g = loads_snap(text)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_arbitrary_ids_remapped_first_seen(self):
        g = loads_snap("9000\t42\n42\t7\n")
        # 9000 -> 0, 42 -> 1, 7 -> 2 in first-appearance order
        assert sorted(g.nodes()) == [0, 1, 2]
        assert sorted(tuple(sorted(e)) for e in g.edges()) == [(0, 1), (1, 2)]

    def test_duplicate_and_reversed_arcs_collapse(self):
        g = loads_snap("0\t1\n1\t0\n0\t1\n")
        assert g.num_edges == 1

    def test_self_loop_dropped_but_node_kept(self):
        g = loads_snap("5\t5\n5\t6\n")
        assert g.num_nodes == 2
        assert g.num_edges == 1
        lonely = loads_snap("3\t3\n")
        assert lonely.num_nodes == 1
        assert lonely.num_edges == 0

    def test_self_loop_error_mode(self):
        with pytest.raises(GraphError, match="self-loop"):
            loads_snap("5\t5\n", self_loops="error")

    def test_bad_self_loops_value_rejected(self):
        with pytest.raises(GraphError, match="self_loops"):
            loads_snap("0\t1\n", self_loops="keep")

    def test_malformed_lines_raise(self):
        with pytest.raises(GraphError, match="endpoint pair"):
            loads_snap("0 1 2\n")
        with pytest.raises(GraphError, match="non-integer"):
            loads_snap("a\tb\n")
        with pytest.raises(GraphError, match="negative"):
            loads_snap("-1\t2\n")

    def test_file_round_trip(self, tmp_path):
        g = gnm_random(25, 3, seed=4)
        path = tmp_path / "g.snap.txt"
        write_snap(g, path, comment="fixture")
        g2 = read_snap(path)
        assert g2.num_nodes == g.num_nodes
        assert g2.num_edges == g.num_edges

    def test_space_separated_pairs_accepted(self):
        # some SNAP mirrors use spaces, not tabs
        g = loads_snap("0 1\n1 2\n")
        assert g.num_edges == 2
