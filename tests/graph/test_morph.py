"""Tests for repro.graph.morph."""

import pytest

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.ccgraph import CCGraph
from repro.graph.morph import attach_clique, boundary, contract_nodes, replace_cavity


class TestBoundary:
    def test_boundary_of_inner_node(self, small_graph):
        assert boundary(small_graph, [2]) == {0, 1, 3}

    def test_boundary_excludes_cavity(self, small_graph):
        assert boundary(small_graph, [0, 1, 2]) == {3}

    def test_boundary_of_everything_is_empty(self, small_graph):
        assert boundary(small_graph, range(6)) == set()


class TestReplaceCavity:
    def test_basic_replacement(self, small_graph):
        new = replace_cavity(small_graph, [0, 1], num_new=3)
        assert len(new) == 3
        assert 0 not in small_graph and 1 not in small_graph
        # new nodes form a clique and attach to the old boundary {2}
        for u in new:
            assert small_graph.has_edge(u, 2)
            for v in new:
                if u != v:
                    assert small_graph.has_edge(u, v)

    def test_no_boundary_connection(self, small_graph):
        new = replace_cavity(small_graph, [0], num_new=2, connect_boundary=False)
        for u in new:
            assert small_graph.degree(u) == 1  # only each other

    def test_independent_new_nodes(self, small_graph):
        new = replace_cavity(small_graph, [0], num_new=2, clique_new=False)
        assert not small_graph.has_edge(new[0], new[1])

    def test_zero_new_nodes(self, small_graph):
        assert replace_cavity(small_graph, [5], num_new=0) == []
        assert 5 not in small_graph

    def test_empty_cavity_raises(self, small_graph):
        with pytest.raises(GraphError):
            replace_cavity(small_graph, [], num_new=1)

    def test_duplicate_cavity_nodes_deduped(self, small_graph):
        new = replace_cavity(small_graph, [0, 0, 1], num_new=1)
        assert len(new) == 1

    def test_node_count_accounting(self, small_graph):
        before = small_graph.num_nodes
        replace_cavity(small_graph, [0, 1], num_new=5)
        assert small_graph.num_nodes == before - 2 + 5


class TestContractNodes:
    def test_contract_triangle(self, small_graph):
        merged = contract_nodes(small_graph, [0, 1, 2])
        assert small_graph.neighbors(merged) == frozenset({3})
        assert small_graph.num_nodes == 4

    def test_contract_single_node(self, small_graph):
        merged = contract_nodes(small_graph, [2])
        assert small_graph.neighbors(merged) == frozenset({0, 1, 3})

    def test_contract_missing_raises(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            contract_nodes(small_graph, [0, 99])

    def test_contract_empty_raises(self, small_graph):
        with pytest.raises(GraphError):
            contract_nodes(small_graph, [])


class TestAttachClique:
    def test_burst_injection(self, small_graph):
        new = attach_clique(small_graph, 4, anchors=[5])
        assert len(new) == 4
        for u in new:
            assert small_graph.has_edge(u, 5)
        assert small_graph.has_edge(new[0], new[3])

    def test_no_anchors(self):
        g = CCGraph()
        new = attach_clique(g, 3)
        assert g.num_nodes == 3 and g.num_edges == 3

    def test_missing_anchor_raises(self, small_graph):
        with pytest.raises(NodeNotFoundError):
            attach_clique(small_graph, 2, anchors=[99])

    def test_negative_size_raises(self, small_graph):
        with pytest.raises(GraphError):
            attach_clique(small_graph, -1)
