"""End-to-end integration tests of the paper's headline claims.

These run at moderate scale (seconds, not minutes) and tie together the
model layer, the runtime and the controllers — the statements a referee
would spot-check.
"""

import numpy as np
import pytest

from repro.control import (
    FixedController,
    HybridController,
    RecurrenceAController,
    oracle_mu,
)
from repro.experiments.fig3 import default_hybrid
from repro.graph import gnm_random, kdn_worst_case
from repro.model import (
    estimate_conflict_ratio,
    estimate_em,
    worst_case_conflict_ratio,
)
from repro.runtime import ReplayGraphWorkload


@pytest.fixture(scope="module")
def fig3_graph():
    return gnm_random(2000, 16, seed=2024)


@pytest.fixture(scope="module")
def fig3_mu(fig3_graph):
    return oracle_mu(fig3_graph, 0.2, reps=120, seed=1)


class TestHeadlineClaims:
    def test_hybrid_converges_in_about_15_steps(self, fig3_graph, fig3_mu):
        """§4.1: 'in about 15 steps the controller converges close to μ'."""
        settles = []
        for seed in range(3):
            wl = ReplayGraphWorkload(fig3_graph.copy())
            eng = wl.build_engine(default_hybrid(0.2), seed=seed)
            res = eng.run(max_steps=100)
            settles.append(res.settling_step(fig3_mu, band=0.35))
        assert np.median(settles) <= 20

    def test_recurrence_a_is_an_order_slower(self, fig3_graph, fig3_mu):
        wl = ReplayGraphWorkload(fig3_graph.copy())
        eng = wl.build_engine(RecurrenceAController(0.2), seed=0)
        res = eng.run(max_steps=200)
        assert res.settling_step(fig3_mu, band=0.35) >= 50

    def test_hybrid_steady_state_hits_rho(self, fig3_graph):
        wl = ReplayGraphWorkload(fig3_graph.copy())
        eng = wl.build_engine(default_hybrid(0.2), seed=5)
        res = eng.run(max_steps=120)
        assert res.r_trace[40:].mean() == pytest.approx(0.2, abs=0.05)

    def test_worst_case_bound_holds_at_scale(self, fig3_graph):
        """Thm. 2/3 at Fig. 2's size: bound dominates the random graph."""
        n, d = 2000, 16
        for m in (60, 200, 600):
            mc = estimate_conflict_ratio(fig3_graph, m, reps=120, seed=m)
            bound = worst_case_conflict_ratio(2006 - 2006 % 17, d, m)  # nearest valid n
            assert mc.mean <= bound + 0.02

    def test_kdn_is_attained_worst_case(self):
        n, d, m = 2006 - 2006 % 17, 16, 100
        g = kdn_worst_case(n, d)
        mc = estimate_em(g, m, reps=300, seed=0)
        assert 1.0 - mc.mean / m == pytest.approx(
            worst_case_conflict_ratio(n, d, m), abs=3 * mc.half_width / m + 1e-6
        )

    def test_rho_zero_pathology_of_remark1(self, fig3_graph):
        """Remark 1: chasing ρ→0 collapses the allocation to m_min."""
        wl = ReplayGraphWorkload(fig3_graph.copy())
        eng = wl.build_engine(HybridController(0.005), seed=6)
        res = eng.run(max_steps=80)
        assert res.m_trace[-1] == 2

    def test_oracle_fixed_allocation_is_competitive(self, fig3_graph, fig3_mu):
        """Fixed at μ achieves r̄ ≈ ρ — the fixed point the paper defines."""
        wl = ReplayGraphWorkload(fig3_graph.copy())
        eng = wl.build_engine(FixedController(fig3_mu), seed=7)
        res = eng.run(max_steps=60)
        assert res.r_trace.mean() == pytest.approx(0.2, abs=0.05)


class TestContinuousDrift:
    def test_tracks_slowly_densifying_environment(self):
        """The regenerating workload's density ramps 4 → 40 over the run;
        the allocation must come down with the shrinking parallelism."""
        from repro.runtime import RegeneratingGraphWorkload

        g = gnm_random(1200, 4, seed=11)
        wl = RegeneratingGraphWorkload(g, target_degree=4, seed=12)
        steps_total = 240

        def densify(engine, stats):
            frac = stats.step / steps_total
            wl.target_degree = int(4 + 36 * frac)

        ctrl = HybridController(0.2, m_max=512)
        engine = wl.build_engine(ctrl, seed=13, step_hook=densify)
        res = engine.run(max_steps=steps_total)
        early = res.m_trace[30:60].mean()
        late = res.m_trace[-30:].mean()
        assert late < 0.6 * early  # allocation followed the density ramp
        assert res.r_trace[-60:].mean() == pytest.approx(0.2, abs=0.08)


class TestDrainingRun:
    def test_hybrid_tracks_decaying_parallelism(self):
        """On a consuming workload conflicts vanish as the graph drains;
        the controller should ramp m UP over time (more parallelism)."""
        from repro.runtime import ConsumingGraphWorkload

        g = gnm_random(3000, 20, seed=3)
        wl = ConsumingGraphWorkload(g)
        eng = wl.build_engine(HybridController(0.25, m_max=256), seed=4)
        res = eng.run(max_steps=500)
        ms = res.m_trace
        early = ms[8:28].mean()
        late_idx = min(len(ms) - 20, 200)
        late = ms[late_idx : late_idx + 20].mean()
        assert late > early

    def test_total_work_conserved(self):
        from repro.runtime import ConsumingGraphWorkload

        g = gnm_random(800, 10, seed=8)
        wl = ConsumingGraphWorkload(g)
        res = wl.build_engine(HybridController(0.25), seed=9).run()
        assert res.total_committed == 800
