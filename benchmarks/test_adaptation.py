"""ADAPT — §4.1's stress case: abrupt parallelism changes (0 → ~1000/30 steps)."""

import pytest

from repro.apps.profiles import ScheduledReplayWorkload, delaunay_burst_profile
from repro.control.hybrid import HybridController
from repro.experiments import adaptation


@pytest.fixture(scope="module")
def adapt_result():
    return adaptation.run(
        profiles=("step", "spike", "burst"), total_tasks=2000, rho=0.20, seed=0
    )


def _burst_run():
    wl = ScheduledReplayWorkload(delaunay_burst_profile(peak=500, total_tasks=2000))
    eng = wl.build_engine(HybridController(0.2), seed=5)
    return eng.run(max_steps=wl.total_steps())


def test_adaptation_regeneration(adapt_result, save_report, benchmark):
    benchmark.pedantic(_burst_run, rounds=3, iterations=1)
    save_report("adaptation", adapt_result)

    for profile in ("step", "spike", "burst"):
        hybrid_lag = adapt_result.scalars[f"{profile}_hybrid_mean_lag"]
        a_lag = adapt_result.scalars[f"{profile}_recA_mean_lag"]
        # the paper's requirement: fast re-tracking; A-only cannot keep up
        assert hybrid_lag <= 30, profile
        assert hybrid_lag < a_lag, profile


def test_burst_tracks_delaunay_shape(adapt_result):
    """On the [15]-style burst, the allocation must follow the rise."""
    burst_series = [
        (name, ys) for name, _, ys in adapt_result.series if name.startswith("burst/hybrid ")
        or name.startswith("burst/hybrid(")
    ]
    name, ys = next((n, y) for n, y in burst_series if "no split" not in n)
    # allocation at the end of the rise is much higher than at the start
    assert max(ys) > 20 * ys[0]
