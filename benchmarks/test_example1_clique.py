"""EX1 — paper Example 1: K_{n²} ∪ D_n and available vs exploitable parallelism."""

import pytest

from repro.experiments import example1
from repro.graph.generators import clique_plus_isolated
from repro.model.conflict_ratio import estimate_em


@pytest.fixture(scope="module")
def ex1_result():
    return example1.run(sizes=(10, 20, 40), reps=2000, seed=0)


def test_example1_regeneration(ex1_result, save_report, benchmark):
    g = clique_plus_isolated(40 * 40, 40)
    benchmark(estimate_em, g, 41, 200, 3)
    save_report("example1", ex1_result)

    _, _, rows = ex1_result.tables[0]
    for n, max_is, exact, mc, half, bm in rows:
        # the paper's punchline: exactly 2 in expectation, for every n
        assert exact == pytest.approx(2.0, abs=1e-9)
        assert abs(mc - exact) <= 3 * half
        # while the maximal IS keeps growing linearly
        assert max_is == n + 1


def test_example1_gap_grows_with_n(ex1_result):
    """available/exploitable parallelism ratio diverges like (n+1)/2."""
    _, _, rows = ex1_result.tables[0]
    gaps = [max_is / exact for _, max_is, exact, _, _, _ in rows]
    assert gaps == sorted(gaps)
    assert gaps[-1] > 20  # n=40 -> 20.5
