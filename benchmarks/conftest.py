"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artefact (figure/claim) at full
size, times the dominant computation via pytest-benchmark, asserts the
paper's qualitative shape, and writes the rendered report to
``bench_reports/<name>.txt`` so the regenerated "figures" survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).resolve().parent.parent / "bench_reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture
def save_report(report_dir):
    """Persist an experiment's artefacts to bench_reports/<name>.*.

    Strings get a ``.txt``; ExperimentResults additionally get ``.json``
    (full data dump) and, when they carry series, ``.svg`` (the figure).
    """

    def _save(name: str, result, svg_kwargs: dict | None = None) -> None:
        if isinstance(result, str):
            (report_dir / f"{name}.txt").write_text(result, encoding="utf-8")
            return
        (report_dir / f"{name}.txt").write_text(result.render(), encoding="utf-8")
        result.save_json(report_dir / f"{name}.json")
        if result.series:
            result.to_svg(report_dir / f"{name}.svg", **(svg_kwargs or {}))

    return _save
