"""FIG2 — regenerate the conflict-ratio curves of paper Fig. 2.

Timed kernel: one Monte-Carlo conflict-ratio estimate at the paper's size
(n = 2000, d = 16).  The full-figure regeneration runs once, its shape is
asserted, and the rendered table goes to ``bench_reports/fig2.txt``.
"""

import numpy as np
import pytest

from repro.experiments import fig2
from repro.graph.generators import gnm_random
from repro.model.conflict_ratio import estimate_conflict_ratio
from repro.model.turan import initial_derivative


@pytest.fixture(scope="module")
def fig2_result():
    return fig2.run(n=2000, d=16, grid_size=25, reps=100, seed=0)


def test_fig2_regeneration(fig2_result, save_report, benchmark):
    graph = gnm_random(2000, 16, seed=99)
    benchmark(estimate_conflict_ratio, graph, 500, 20, 7)

    save_report(
        "fig2",
        fig2_result,
        svg_kwargs={"xlabel": "m (active nodes)", "ylabel": "conflict ratio r̄(m)"},
    )
    series = {name: np.asarray(ys) for name, _, ys in fig2_result.series}
    ms = np.asarray(fig2_result.series[0][1])

    # Paper shape 1: the Cor. 2 worst-case bound dominates the random graph
    assert fig2_result.scalars["bound_dominates_random_fraction"] == 1.0

    # Paper shape 2 (Prop. 2): common initial derivative d/2(n−1); at m = 2
    # the curve value IS the derivative (r̄(1) = 0), so compare within the
    # Monte-Carlo confidence interval of the m = 2 grid point
    slope = initial_derivative(2000, 16)
    rows = fig2_result.tables[0][2]
    m2_row = next(row for row in rows if row[0] == 2)
    for value, half in ((m2_row[2], m2_row[3]), (m2_row[4], m2_row[5])):
        assert abs(value - slope) <= 3 * half + 5e-3

    # Paper shape 3: curves that climb high (> 1/2 at m = n) are ~linear in
    # the operating region r̄ ≤ 30% — check linearity of the random curve
    rand = series["random graph"]
    operating = rand <= 0.3
    fitted = np.polyfit(ms[operating], rand[operating], 1)
    residual = rand[operating] - np.polyval(fitted, ms[operating])
    assert rand[-1] > 0.5
    assert np.abs(residual).max() < 0.03

    # while the saturating cliques+isolated curve "does not raise too much"
    assert series["cliques+isolated"][-1] < rand[-1]


def test_fig2_all_curves_monotone(fig2_result):
    """Prop. 1 at figure scale: every curve non-decreasing up to noise."""
    for name, _, ys in fig2_result.series:
        assert np.all(np.diff(np.asarray(ys)) > -0.03), name
