"""FIG1 — the model cartoon, executed and verified on many random panels."""

import pytest

from repro.experiments import fig1


@pytest.fixture(scope="module")
def fig1_result():
    return fig1.run(n=16, d=2.5, m=8, panels=3, seed=0)


def test_fig1_regeneration(fig1_result, save_report, benchmark):
    benchmark(fig1.panel, 16, 2.5, 8, 7)
    save_report("fig1", fig1_result)
    assert fig1_result.scalars["all_panels_valid"] == 1.0


def test_fig1_caption_holds_at_scale():
    """The caption's invariant on 200 independent random panels."""
    for seed in range(200):
        p = fig1.panel(20, 3.0, 10, seed=seed)
        assert p["independent"], seed
        assert p["maximal"], seed
