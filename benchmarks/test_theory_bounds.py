"""THEORY — §3 closed forms (Prop. 2, Thm. 2/3, Cor. 2/3) at paper scale."""

import pytest

from repro.experiments import theory
from repro.model.turan import (
    alpha_conflict_bound_limit,
    em_kdn,
    worst_case_conflict_ratio,
)


@pytest.fixture(scope="module")
def theory_result():
    # n = 2040 is the Fig. 2 size rounded to a multiple of d+1 = 17
    return theory.run(n=2040, d=16, reps=400, seed=0)


def test_theory_regeneration(theory_result, save_report, benchmark):
    benchmark(em_kdn, 2040, 16, 500)
    save_report("theory", theory_result)

    assert theory_result.scalars["thm2_violations"] == 0.0
    assert theory_result.scalars["cor3_alpha_half_bound"] == pytest.approx(0.213, abs=5e-4)


def test_prop2_at_scale(theory_result):
    title, headers, rows = theory_result.tables[0]
    for name, n, d, formula, mc, half in rows:
        assert abs(mc - formula) <= 3 * half + 1e-3, name


def test_thm3_closed_form_at_scale(theory_result):
    title, headers, rows = theory_result.tables[1]
    for m, exact, mc, half in rows:
        assert abs(mc - exact) <= 3 * half + 0.01


def test_cor3_bound_chain(theory_result):
    """MC on K_d^n ≤ exact worst case ≤ degree-free limit, per α row."""
    title, headers, rows = theory_result.tables[3]
    for alpha, m, limit_bound, exact_worst, mc, half in rows:
        assert exact_worst <= limit_bound + 1e-9
        assert mc - 3 * half - 0.01 <= exact_worst


def test_worst_case_monotone_in_density():
    """Denser worst-case families leave less exploitable parallelism."""
    m = 200
    bounds = [worst_case_conflict_ratio(2040, d, m) for d in (1, 4, 16)]
    assert bounds == sorted(bounds)


def test_cor3_limit_shape():
    assert alpha_conflict_bound_limit(0.01) < 0.01
    assert alpha_conflict_bound_limit(4.0) > 0.7
