"""Step-overhead benchmark gate for the relaxed commit order.

Relaxation buys a lower conflict ratio (second case below, and the
curves in ``experiments/relaxation.py``), but it must not buy it with
scheduling overhead: the windowed draw is one vectorised
:func:`~repro.runtime.kernels.sample_window_draws` call plus a sliding
window over a bounded staging buffer in
:meth:`~repro.runtime.policies.PriorityWorkset.take_window`.

Measuring that overhead end-to-end needs *matched work*: on a graph
workload strict order abort-cascades behind the horizon barrier
(committing almost nothing per step) while relaxation commits large
batches and pays their apply work — more time per step because more
tasks *succeed*, which is the policy's purpose, not its overhead.  The
gate therefore clocks a conflict-free draining task loop where both
policies commit every launched task and the steps are identical except
for the draw itself: the ``relaxed:8`` median step must stay within
:data:`GATE_MAX_OVERHEAD` of the strict ordered median.

The second case records the other side of the trade on a graph replay
workload (gnm_random(2000, d=8), m=500): per-phase means from the
engine's own :class:`~repro.obs.SpanProfiler` and the fixed-m conflict
ratios, gating only the *semantic* claim that relaxation cuts the abort
rate.  Everything lands in ``BENCH_relaxed.json`` at the repo root.
"""

import json
import statistics
import time
from pathlib import Path

from repro.config import RunConfig
from repro.control.fixed import FixedController
from repro.graph.generators import gnm_random
from repro.obs import SpanProfiler
from repro.registry import ORDER_POLICIES, WORKLOADS, order_family, parse_order_spec
from repro.runtime.core import Engine
from repro.runtime.policies import PriorityWorkset
from repro.runtime.task import CallbackOperator, Task

#: ceiling: median relaxed step time / median ordered step time on
#: matched work (identical commit counts, only the draw differs)
GATE_MAX_OVERHEAD = 1.2
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_relaxed.json"

DEPTH = 8
ENGINE_SEED = 3

# matched-work case: a draining loop of self-conflicting-only tasks
LOOP_TASKS, LOOP_M, LOOP_STEPS = 40_000, 500, 80

# graph case: the BENCH_steps replay topology at a smaller scale
GRAPH_N, GRAPH_D, GRAPH_M, GRAPH_STEPS, GRAPH_SEED = 2000, 8, 500, 80, 17

PHASES = ("select", "resolve", "commit")


def _order_policy(order: str, *, conflict_policy=None):
    name, kwargs = parse_order_spec(order)
    if order_family(name) == "priority":
        kwargs["priority_of"] = lambda task: float(task.payload)
    return ORDER_POLICIES.create(name, conflict_policy=conflict_policy, **kwargs)


def _loop_case(order: str):
    """Clock a draining conflict-free task loop; returns (times, steps)."""
    workset = PriorityWorkset()
    for i in range(LOOP_TASKS):
        workset.add(Task(payload=i), float(i))
    operator = CallbackOperator(
        neighborhood=lambda t: [t.payload],  # self-conflict only
        apply=lambda t: [],  # drain: no new work, no horizon pathology
    )
    engine = Engine(
        workset=workset,
        operator=operator,
        controller=FixedController(LOOP_M),
        order=_order_policy(order),
        seed=ENGINE_SEED,
        engine="fast",
    )
    times = []
    for _ in range(LOOP_STEPS):
        t0 = time.perf_counter()
        engine.step()
        times.append(time.perf_counter() - t0)
    return times, [s.as_dict() for s in engine.result.steps]


def _best_median(order: str, repeats: int = 3):
    """Least-noise estimate: the best median over *repeats* full runs.

    The runs are seeded identically, so repeats are byte-for-byte the
    same computation and taking the minimum median only discards
    scheduler noise, never real work.
    """
    best, steps = float("inf"), None
    for _ in range(repeats):
        times, run_steps = _loop_case(order)
        assert steps is None or run_steps == steps  # repeats are identical
        steps = run_steps
        best = min(best, statistics.median(times))
    return best, steps


def test_relaxed_step_overhead_gate():
    """relaxed:8 costs <= 1.2x an ordered step doing identical work."""
    med_ordered, ordered_steps = _best_median("ordered")
    med_relaxed, relaxed_steps = _best_median(f"relaxed:{DEPTH}")

    # matched work: every launched task commits in both runs
    assert all(s["committed"] == LOOP_M for s in ordered_steps)
    assert all(s["committed"] == LOOP_M for s in relaxed_steps)

    overhead = med_relaxed / med_ordered

    BENCH_JSON.write_text(
        json.dumps(
            {
                "matched_work_case": {
                    "tasks": LOOP_TASKS,
                    "m": LOOP_M,
                    "steps": LOOP_STEPS,
                    "workload": "draining task loop, self-conflicts only",
                    "depth": DEPTH,
                    "ordered_median_step_seconds": med_ordered,
                    "relaxed_median_step_seconds": med_relaxed,
                    "overhead_vs_ordered": overhead,
                    "gate_max_overhead": GATE_MAX_OVERHEAD,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    assert overhead <= GATE_MAX_OVERHEAD, (
        f"relaxed draw regressed: {overhead:.2f}x > {GATE_MAX_OVERHEAD}x "
        f"(ordered {med_ordered * 1e3:.3f} ms/step, "
        f"relaxed {med_relaxed * 1e3:.3f} ms/step)"
    )


def _graph_case(order: str):
    """Profiled graph replay run; returns (phase means, step stats)."""
    config = RunConfig(workload="replay", controller="fixed", m=GRAPH_M, order=order)
    workload = WORKLOADS.create(
        "replay", gnm_random(GRAPH_N, GRAPH_D, seed=GRAPH_SEED), config
    )
    profiler = SpanProfiler()
    engine = Engine(
        workset=workload.workset,
        operator=workload.operator,
        controller=FixedController(GRAPH_M),
        order=_order_policy(order, conflict_policy=workload.policy),
        seed=ENGINE_SEED,
        engine="fast",
        profiler=profiler,
    )
    result = engine.run(max_steps=GRAPH_STEPS)
    stats = profiler.stats()
    means = {phase: stats[f"step/{phase}"].mean_ns for phase in PHASES}
    means["step"] = stats["step"].mean_ns
    return means, [s.as_dict() for s in result.steps]


def test_relaxed_conflict_benefit_record():
    """On a real graph, relaxation must cut the abort rate; phases recorded."""
    ordered_means, ordered_steps = _graph_case("ordered")
    relaxed_means, relaxed_steps = _graph_case(f"relaxed:{DEPTH}")

    def ratio(steps):
        return statistics.fmean(s["conflict_ratio"] for s in steps)

    ratio_ordered, ratio_relaxed = ratio(ordered_steps), ratio(relaxed_steps)

    payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    payload["graph_case"] = {
        "graph": "gnm_random",
        "n": GRAPH_N,
        "d": GRAPH_D,
        "m": GRAPH_M,
        "steps": GRAPH_STEPS,
        "workload": "replay",
        "depth": DEPTH,
        "ordered_phase_mean_ns": ordered_means,
        "relaxed_phase_mean_ns": relaxed_means,
        "ordered_mean_conflict_ratio": ratio_ordered,
        "relaxed_mean_conflict_ratio": ratio_relaxed,
        "ordered_committed_total": sum(s["committed"] for s in ordered_steps),
        "relaxed_committed_total": sum(s["committed"] for s in relaxed_steps),
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # the semantic claim behind the whole feature: fewer aborts per step
    assert ratio_relaxed < ratio_ordered
