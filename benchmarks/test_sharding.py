"""End-to-end benchmark gate for the process-backed shard runtime.

The sharded commit order splits each round's resolution into per-shard
phase-1 greedy walks plus a cut-edge halo exchange; the
:func:`repro.runtime.run_sharded` runtime ships the phase-1 walks to one
worker process per shard.  On a multi-core box that parallelism must pay
for its pipe round-trips: this gate runs a 1M-node power-law replay case
(heavy-tailed conflict degrees — the irregular-program shape the paper
targets) through the **single-worker** in-process engine and through the
**4-shard worker pool**, demands step-stat bit-parity between the two
(they are the same computation — the differential suite's guarantee,
re-checked here as the precondition for comparing clocks), writes the
scaling curve over 1/2/4/8 shards to ``BENCH_shard.json`` at the repo
root, and fails when the pool's end-to-end speedup over the
single-worker run drops below :data:`GATE_MIN_SPEEDUP`.

The gate only *asserts* on hosts with at least 4 CPUs (CI's runners);
smaller boxes — including single-core dev containers — still run
everything and record ``gate_enforced: false``, so the artifact is
always produced.

Both legs run ``engine="reference"`` — the per-node Python walk is the
single-worker engine the pool's workers actually parallelise; the fast
vectorised kernels are a different (in-process) answer to the same
problem and are benchmarked by ``benchmarks/test_kernels.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.config import RunConfig
from repro.graph.ccgraph import CCGraph
from repro.runtime.sharded import run_sharded

GATE_MIN_SPEEDUP = 2.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_shard.json"

N = 1_000_000
AVG_DEGREE = 10
FIXED_M = 32_768
STEPS = 30
GATE_SHARDS = 4
CURVE_SHARDS = (1, 2, 4, 8)
GRAPH_SEED, ENGINE_SEED = 17, 3
POWER = 0.8  # weight exponent of the degree-skew distribution


def _powerlaw_graph(n: int, avg_degree: int, seed: int) -> CCGraph:
    """Heavy-tailed random graph built from vectorised NumPy sampling.

    Both endpoints of every edge are drawn from a Zipf-like weight
    ``w_i ∝ (i+1)^-POWER``, giving hub nodes power-law-shaped degrees.
    The pure-Python preferential-attachment generator
    (:func:`repro.graph.generators.powerlaw_graph`) would take minutes
    at this scale; here only the final edge insertion is a Python loop.
    """
    rng = np.random.default_rng(seed)
    target = n * avg_degree // 2
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** -POWER
    weights /= weights.sum()
    # oversample, then drop self-loops and duplicates
    draw = int(target * 1.4)
    u = rng.choice(n, size=draw, p=weights)
    v = rng.choice(n, size=draw, p=weights)
    keep = u != v
    pairs = np.stack([np.minimum(u, v)[keep], np.maximum(u, v)[keep]], axis=1)
    pairs = np.unique(pairs, axis=0)
    pairs = pairs[rng.permutation(len(pairs))[:target]]
    graph = CCGraph.from_edges(n, [])
    add_edge = graph.add_edge
    for a, b in pairs.tolist():
        add_edge(a, b)
    return graph


def _config(shards: int) -> RunConfig:
    return RunConfig(
        workload="replay",
        controller="fixed",
        m=FIXED_M,
        order=f"sharded:{shards}",
        max_steps=STEPS,
        engine="reference",
    )


def _timed_run(graph: CCGraph, shards: int, pool: bool):
    """One end-to-end run (pool spawn included); returns (seconds, steps)."""
    t0 = time.perf_counter()
    if pool:
        result = run_sharded(_config(shards), graph, seed=ENGINE_SEED)
    else:
        from repro.api import run as api_run

        result = api_run(_config(shards), graph=graph, seed=ENGINE_SEED)
    elapsed = time.perf_counter() - t0
    return elapsed, [s.as_dict() for s in result.steps]


def _best(graph: CCGraph, shards: int, pool: bool, repeats: int = 2):
    """Least-noise estimate: best wall-clock over identically seeded runs."""
    best, steps = float("inf"), None
    for _ in range(repeats):
        elapsed, run_steps = _timed_run(graph, shards, pool)
        assert steps is None or run_steps == steps  # repeats are identical
        steps = run_steps
        best = min(best, elapsed)
    return best, steps


def test_shard_speedup_gate():
    """4-shard pool >= 2x the single-worker engine, end to end."""
    graph = _powerlaw_graph(N, AVG_DEGREE, GRAPH_SEED)
    cpus = os.cpu_count() or 1
    gate_enforced = cpus >= GATE_SHARDS

    single_secs, single_steps = _best(graph, GATE_SHARDS, pool=False)
    pool_secs, pool_steps = _best(graph, GATE_SHARDS, pool=True)
    # bit-parity precondition: the pool ran the same computation
    assert pool_steps == single_steps

    scaling = []
    for shards in CURVE_SHARDS:
        if shards == GATE_SHARDS:
            secs, steps = pool_secs, pool_steps
        else:
            secs, steps = _timed_run(graph, shards, pool=shards > 1)
        scaling.append(
            {
                "shards": shards,
                "seconds": secs,
                "committed": sum(s["committed"] for s in steps),
                "aborted": sum(s["aborted"] for s in steps),
            }
        )

    speedup = single_secs / pool_secs
    BENCH_JSON.write_text(
        json.dumps(
            {
                "case": {
                    "graph": "powerlaw (vectorised Zipf endpoints)",
                    "n": N,
                    "avg_degree": AVG_DEGREE,
                    "m": FIXED_M,
                    "steps": STEPS,
                    "workload": "replay",
                    "engine": "reference",
                },
                "cpu_count": cpus,
                "gate_enforced": gate_enforced,
                "gate_min_speedup": GATE_MIN_SPEEDUP,
                "single_worker_seconds": single_secs,
                "pool_seconds": pool_secs,
                "speedup": speedup,
                "scaling": scaling,
                "committed_total": sum(s["committed"] for s in single_steps),
                "aborted_total": sum(s["aborted"] for s in single_steps),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    if gate_enforced:
        assert speedup >= GATE_MIN_SPEEDUP, (
            f"shard pool regressed: {speedup:.2f}x < {GATE_MIN_SPEEDUP}x "
            f"(single {single_secs:.2f}s, {GATE_SHARDS}-shard pool "
            f"{pool_secs:.2f}s for {STEPS} steps)"
        )
