"""End-to-end step benchmark gate for the incremental selection backend.

``BENCH_obs.json`` attributed ~73% of step wall-clock to ``select``: the
kernels had won ``resolve``/``commit``, but every step still paid a
per-task Python loop of scalar RNG draws plus, on morphing graphs, a full
CSR snapshot rebuild.  The incremental backend (``select="incremental"``)
replaces both — :class:`~repro.runtime.active_set.ActiveSet` batches the
draws through one vectorised kernel call and
:class:`~repro.graph.ccgraph.ConflictDeltaView` absorbs graph morphs in
O(delta).

This gate runs the BENCH_obs case (gnm_random(5000, d=8), m=2500, 120
replay steps) three ways — reference engine + reference work-set, fast
engine + reference work-set, fast engine + incremental backend — checks
the three step-stat sequences are *identical* (bit-parity is the
precondition for comparing their clocks), writes per-phase medians to
``BENCH_steps.json`` at the repo root, and fails if the end-to-end median
step speedup of the incremental backend over the full reference path
drops below :data:`GATE_MIN_STEP_SPEEDUP`.

A second, ungated case runs a morphing (regenerating) workload on both
backends and records how many full CSR rebuilds the delta view needed —
the memoisation claim is that morphs cost O(delta), so rebuilds must stay
far below the step count.
"""

import json
import statistics
import time
from pathlib import Path

from repro.control.fixed import FixedController
from repro.graph.generators import gnm_random
from repro.runtime.workloads import RegeneratingGraphWorkload, ReplayGraphWorkload

#: end-to-end floor: median reference step time / median incremental step
#: time on the BENCH_obs case; the select rework targets >= 5x
GATE_MIN_STEP_SPEEDUP = 5.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_steps.json"

GATE_N, GATE_D, GATE_M, GATE_STEPS = 5000, 8, 2500, 120
GRAPH_SEED, ENGINE_SEED = 17, 3

MORPH_N, MORPH_D, MORPH_M, MORPH_STEPS = 2000, 8, 500, 60


def _replay_case(engine_mode: str, select: str):
    graph = gnm_random(GATE_N, GATE_D, seed=GRAPH_SEED)
    workload = ReplayGraphWorkload(graph, select=select)
    engine = workload.build_engine(
        FixedController(GATE_M), seed=ENGINE_SEED, engine=engine_mode
    )
    times = []
    for _ in range(GATE_STEPS):
        t0 = time.perf_counter()
        engine.step()
        times.append(time.perf_counter() - t0)
    return times, [s.as_dict() for s in engine.result.steps]


def _best_median(engine_mode: str, select: str, repeats: int = 2):
    """Least-noise estimate: the best median over *repeats* full runs.

    The runs are seeded identically, so repeats are byte-for-byte the
    same computation and taking the minimum median only discards
    scheduler noise, never real work.
    """
    best, steps = float("inf"), None
    for _ in range(repeats):
        times, run_steps = _replay_case(engine_mode, select)
        assert steps is None or run_steps == steps  # repeats are identical
        steps = run_steps
        best = min(best, statistics.median(times))
    return best, steps


def test_step_speedup_gate():
    """incremental >= 5x reference per median step; bit-parity enforced."""
    med_ref, ref_steps = _best_median("reference", "workset")
    med_fast, fast_steps = _best_median("fast", "workset")
    med_inc, inc_steps = _best_median("fast", "incremental")

    # bit-parity precondition: all three paths ran the same computation
    assert fast_steps == ref_steps
    assert inc_steps == ref_steps

    speedup = med_ref / med_inc

    BENCH_JSON.write_text(
        json.dumps(
            {
                "case": {
                    "graph": "gnm_random",
                    "n": GATE_N,
                    "d": GATE_D,
                    "m": GATE_M,
                    "steps": GATE_STEPS,
                    "workload": "replay",
                },
                "reference_median_step_seconds": med_ref,
                "fast_median_step_seconds": med_fast,
                "incremental_median_step_seconds": med_inc,
                "speedup_vs_reference": speedup,
                "speedup_vs_fast": med_fast / med_inc,
                "gate_min_speedup": GATE_MIN_STEP_SPEEDUP,
                "committed_total": sum(s["committed"] for s in ref_steps),
                "aborted_total": sum(s["aborted"] for s in ref_steps),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    assert speedup >= GATE_MIN_STEP_SPEEDUP, (
        f"incremental select regressed: {speedup:.2f}x < {GATE_MIN_STEP_SPEEDUP}x "
        f"(ref {med_ref * 1e3:.3f} ms/step, incremental {med_inc * 1e3:.3f} ms/step)"
    )


def test_morphing_workload_delta_rebuilds():
    """On a morphing graph the delta view rebuilds rarely, results identical."""

    def run(select):
        graph = gnm_random(MORPH_N, MORPH_D, seed=GRAPH_SEED)
        workload = RegeneratingGraphWorkload(
            graph, target_degree=MORPH_D, seed=7, select=select
        )
        engine = workload.build_engine(
            FixedController(MORPH_M), seed=ENGINE_SEED, engine="fast"
        )
        times = []
        for _ in range(MORPH_STEPS):
            t0 = time.perf_counter()
            engine.step()
            times.append(time.perf_counter() - t0)
        return times, [s.as_dict() for s in engine.result.steps], graph

    ref_times, ref_steps, _ = run("workset")
    inc_times, inc_steps, graph = run("incremental")
    assert inc_steps == ref_steps  # backend invisible on morphing graphs too

    view = graph._delta
    assert view is not None, "incremental run never built the delta view"
    # the snapshot path rebuilds on EVERY step of a morphing run (any
    # mutation invalidates it); the delta view only compacts once stale
    # edges reach half the live count, so rebuilds must be well sublinear
    assert view.rebuilds < MORPH_STEPS / 2, (
        f"delta view rebuilt {view.rebuilds}x in {MORPH_STEPS} steps; "
        "memoisation is not absorbing the morphs"
    )

    payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    payload["morphing_case"] = {
        "graph": "gnm_random",
        "n": MORPH_N,
        "d": MORPH_D,
        "m": MORPH_M,
        "steps": MORPH_STEPS,
        "workload": "regenerating",
        "workset_median_step_seconds": statistics.median(ref_times),
        "incremental_median_step_seconds": statistics.median(inc_times),
        "speedup": statistics.median(ref_times) / statistics.median(inc_times),
        "delta_rebuilds": view.rebuilds,
    }
    BENCH_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
