"""Observability overhead gate.

The three channels (trace events, metrics, timed spans) are sold as
cheap enough to leave on.  This gate holds them to it: two fast engines
step through the same workload in lock-step — one with everything
disabled, one with all three channels active — and the instrumented
engine's median per-step time must stay within ``GATE_MAX_OVERHEAD`` of
the baseline's.  The instrumented run's span profile must also
*explain* the step wall-clock — per-phase times summing to at least
``GATE_MIN_COVERAGE`` of the ``step`` span — or the profiler is lying
about where the time goes.  Measurements land in ``BENCH_obs.json`` at
the repo root (uploaded as a CI artifact).

Steps alternate baseline/instrumented and each side is judged by its
per-step *median*, so a load spike hits a few samples on both sides
instead of masquerading as instrumentation cost.

The *sharded* leg applies the same discipline to distributed tracing
(:mod:`repro.obs.distributed`): two warm 2-shard worker pools — one
with a telemetry bus and halo-sequence stamping, one bare — resolve the
*same* batches in lock-step, alternating which goes first, and the
traced pool's median per-round time must stay within
``SHARD_GATE_MAX_OVERHEAD`` of the bare pool's.  (Whole-run A/B timing
is hopeless on a shared single-CPU runner: scheduler drift between runs
swamps a sub-5% signal; round-level interleaving makes both sides see
the same drift.)  Results land under the ``"sharded"`` key of the same
artifact, so both tests update ``BENCH_obs.json`` read-modify-write
instead of overwriting it.
"""

import json
import statistics
import time

from pathlib import Path

from repro.control.fixed import FixedController
from repro.graph.generators import gnm_random
from repro.obs import (
    SpanProfiler,
    TraceRecorder,
    activate,
    activate_metrics,
    activate_profiler,
    deactivate,
    deactivate_metrics,
    deactivate_profiler,
    profile_report,
    profiling,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.workloads import ReplayGraphWorkload

GATE_MAX_OVERHEAD = 0.05  # instrumented may cost at most 5% extra
GATE_MIN_COVERAGE = 0.95  # phases must explain >= 95% of step wall-clock
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
# the kernel gate's case: heavy steps, so per-step work dominates noise
GATE_N, GATE_D, GATE_M, GATE_SEED = 5000, 8, 2500, 17
GATE_STEPS = 120  # alternating baseline/instrumented step pairs


def _update_bench(payload: dict) -> None:
    """Merge *payload* into ``BENCH_obs.json`` (read-modify-write).

    The two tests in this module own disjoint keys of one artifact, so
    each folds its results into whatever the other already wrote.
    """
    existing: dict = {}
    if BENCH_JSON.exists():
        try:
            existing = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            existing = {}
    if not isinstance(existing, dict):
        existing = {}
    existing.update(payload)
    BENCH_JSON.write_text(
        json.dumps(existing, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def _gate_graph():
    graph = gnm_random(GATE_N, GATE_D, seed=GATE_SEED)
    graph.csr().edge_list  # warm the memoised view, as a stationary run would
    return graph


def _build_engine(graph, instrumented: bool, profiler=None):
    """A fast engine over *graph*; the instrumented one binds all channels.

    Engines capture the active recorder/registry/profiler at construction,
    so the channels only need to be globally active while this runs.
    """
    if instrumented:
        activate(TraceRecorder(capacity=4 * GATE_STEPS))
        activate_metrics(MetricsRegistry())
        activate_profiler(profiler)
    try:
        wl = ReplayGraphWorkload(graph.copy())
        return wl.build_engine(FixedController(GATE_M), seed=3, engine="fast")
    finally:
        if instrumented:
            deactivate()
            deactivate_metrics()
            deactivate_profiler()


def test_obs_overhead_gate():
    """All three channels on vs all off: < 5% median per-step overhead."""
    graph = _gate_graph()
    profiler = SpanProfiler()
    base_engine = _build_engine(graph, instrumented=False)
    instr_engine = _build_engine(graph, instrumented=True, profiler=profiler)

    def base_step() -> float:
        t0 = time.perf_counter_ns()
        base_engine.step()
        return time.perf_counter_ns() - t0

    def instr_step() -> float:
        # the kernel spans look the profiler up at call time, so it must
        # be globally active during the instrumented engine's steps
        activate_profiler(profiler)
        try:
            t0 = time.perf_counter_ns()
            instr_engine.step()
            return time.perf_counter_ns() - t0
        finally:
            deactivate_profiler()

    base_step(), instr_step()  # warm-up pair, discarded
    base_times, instr_times = [], []
    for _ in range(GATE_STEPS):
        base_times.append(base_step())
        instr_times.append(instr_step())
    base_median = statistics.median(base_times)
    instr_median = statistics.median(instr_times)
    overhead = instr_median / base_median - 1.0

    report = profile_report(profiler)
    _update_bench(
        {
            "case": {
                "graph": "gnm_random",
                "n": GATE_N,
                "d": GATE_D,
                "m": GATE_M,
                "steps": GATE_STEPS,
                "engine": "fast",
            },
            "baseline_median_step_ns": base_median,
            "instrumented_median_step_ns": instr_median,
            "overhead_fraction": overhead,
            "gate_max_overhead": GATE_MAX_OVERHEAD,
            "span_coverage": report.coverage,
            "gate_min_coverage": GATE_MIN_COVERAGE,
            "critical_phase": report.critical_phase,
            "phases": {
                p.name: {"total_ns": p.total_ns, "share": p.share}
                for p in report.phases
            },
        }
    )
    assert report.coverage >= GATE_MIN_COVERAGE, (
        f"span phases explain only {report.coverage:.1%} of step wall-clock "
        f"(need >= {GATE_MIN_COVERAGE:.0%})"
    )
    assert overhead < GATE_MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} >= {GATE_MAX_OVERHEAD:.0%} "
        f"(median step: baseline {base_median / 1e6:.3f} ms, "
        f"instrumented {instr_median / 1e6:.3f} ms)"
    )


SHARD_GATE_MAX_OVERHEAD = 0.05  # distributed tracing: < 5% per round
SHARD_COUNT = 2
# heavy rounds, same reasoning as the step gate: per-round work must
# dominate the (measured ~50us) fixed cost of the traced path
SHARD_N, SHARD_D, SHARD_M = 5000, 8, 2500
SHARD_ROUNDS = 60  # lock-step round pairs, after SHARD_WARMUP discarded
SHARD_WARMUP = 5  # covers worker spawn + first-resolve edge shipping


def test_sharded_tracing_overhead_gate(tmp_path):
    """Distributed tracing on vs off at 2 shards: < 5% median per-round.

    Two warm :class:`~repro.runtime.sharded.ShardPool`\\ s resolve the
    same pre-drawn batches in lock-step.  The traced pool carries the
    full distributed-tracing path — a halo sequence number threaded
    through every round message, ``shard_round`` telemetry assembled in
    the workers and shipped back over the pipes, and supervisor-side
    ``ingest``/``note_round`` bookkeeping; the bare pool runs exactly as
    an untraced ``run_sharded`` would.  Which pool resolves first
    alternates per round so cache warmth and scheduler drift cancel.
    The per-shard stream files are written once at bus close (amortised
    across the run), outside the per-round budget this gate holds.
    Results land under the ``"sharded"`` key of BENCH_obs.json.
    """
    import gc

    import numpy as np

    from repro.graph.partition import partition_graph
    from repro.obs.distributed import TelemetryBus
    from repro.runtime.sharded import ShardPool
    from repro.runtime.task import Task

    gc.collect()  # don't let the per-step gate's garbage bill this one
    graph = gnm_random(SHARD_N, SHARD_D, seed=GATE_SEED)
    part = partition_graph(graph, SHARD_COUNT)
    rng = np.random.default_rng(3)
    batches = [
        [
            Task(payload=int(p))
            for p in rng.choice(SHARD_N, size=SHARD_M, replace=False)
        ]
        for _ in range(SHARD_WARMUP + SHARD_ROUNDS)
    ]

    base_pool = ShardPool(SHARD_COUNT)
    traced_pool = ShardPool(SHARD_COUNT)
    bus = TelemetryBus(
        SHARD_COUNT, run_id="bench", trace_dir=tmp_path / "trace"
    )
    traced_pool.bind_telemetry(bus)
    base_times, traced_times = [], []
    try:
        for r, batch in enumerate(batches[:SHARD_WARMUP]):
            base_pool.resolve(r, batch, part, graph)
            traced_pool.resolve(r, batch, part, graph, seq=r)
        for r, batch in enumerate(batches[SHARD_WARMUP:]):
            base_first = r % 2 == 0
            for side in (0, 1):
                if (side == 0) == base_first:
                    t0 = time.perf_counter()
                    base_pool.resolve(r, batch, part, graph)
                    base_times.append(time.perf_counter() - t0)
                else:
                    t0 = time.perf_counter()
                    traced_pool.resolve(r, batch, part, graph, seq=r)
                    traced_times.append(time.perf_counter() - t0)
    finally:
        base_pool.close()
        traced_pool.close()
        bus.close()
    base_median = statistics.median(base_times)
    traced_median = statistics.median(traced_times)
    overhead = traced_median / base_median - 1.0
    _update_bench(
        {
            "sharded": {
                "case": {
                    "graph": "gnm_random",
                    "n": SHARD_N,
                    "d": SHARD_D,
                    "m": SHARD_M,
                    "rounds": SHARD_ROUNDS,
                    "method": "lock-step pools, alternating order",
                },
                "shards": SHARD_COUNT,
                "baseline_median_round_seconds": base_median,
                "traced_median_round_seconds": traced_median,
                "overhead_fraction": overhead,
                "gate_max_overhead": SHARD_GATE_MAX_OVERHEAD,
            }
        }
    )
    assert overhead < SHARD_GATE_MAX_OVERHEAD, (
        f"distributed-tracing overhead {overhead:.1%} >= "
        f"{SHARD_GATE_MAX_OVERHEAD:.0%} (median round: baseline "
        f"{base_median * 1e3:.3f} ms, traced {traced_median * 1e3:.3f} ms)"
    )


def test_sampled_profiling_cuts_span_cost():
    """1-in-N sampling must record ~1/N of the steps, none in between."""
    graph = gnm_random(1000, 8, seed=5)
    with profiling(sample_every=10) as profiler:
        wl = ReplayGraphWorkload(graph.copy())
        engine = wl.build_engine(FixedController(200), seed=3, engine="fast")
        for _ in range(100):
            engine.step()
    report = profile_report(profiler)
    assert report.steps == 10  # steps 0, 10, ..., 90
    assert report.phases  # sampled steps still carry their phase spans
