"""Observability overhead gate.

The three channels (trace events, metrics, timed spans) are sold as
cheap enough to leave on.  This gate holds them to it: two fast engines
step through the same workload in lock-step — one with everything
disabled, one with all three channels active — and the instrumented
engine's median per-step time must stay within ``GATE_MAX_OVERHEAD`` of
the baseline's.  The instrumented run's span profile must also
*explain* the step wall-clock — per-phase times summing to at least
``GATE_MIN_COVERAGE`` of the ``step`` span — or the profiler is lying
about where the time goes.  Measurements land in ``BENCH_obs.json`` at
the repo root (uploaded as a CI artifact).

Steps alternate baseline/instrumented and each side is judged by its
per-step *median*, so a load spike hits a few samples on both sides
instead of masquerading as instrumentation cost.
"""

import json
import statistics
import time

from pathlib import Path

from repro.control.fixed import FixedController
from repro.graph.generators import gnm_random
from repro.obs import (
    SpanProfiler,
    TraceRecorder,
    activate,
    activate_metrics,
    activate_profiler,
    deactivate,
    deactivate_metrics,
    deactivate_profiler,
    profile_report,
    profiling,
)
from repro.obs.metrics import MetricsRegistry
from repro.runtime.workloads import ReplayGraphWorkload

GATE_MAX_OVERHEAD = 0.05  # instrumented may cost at most 5% extra
GATE_MIN_COVERAGE = 0.95  # phases must explain >= 95% of step wall-clock
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
# the kernel gate's case: heavy steps, so per-step work dominates noise
GATE_N, GATE_D, GATE_M, GATE_SEED = 5000, 8, 2500, 17
GATE_STEPS = 120  # alternating baseline/instrumented step pairs


def _gate_graph():
    graph = gnm_random(GATE_N, GATE_D, seed=GATE_SEED)
    graph.csr().edge_list  # warm the memoised view, as a stationary run would
    return graph


def _build_engine(graph, instrumented: bool, profiler=None):
    """A fast engine over *graph*; the instrumented one binds all channels.

    Engines capture the active recorder/registry/profiler at construction,
    so the channels only need to be globally active while this runs.
    """
    if instrumented:
        activate(TraceRecorder(capacity=4 * GATE_STEPS))
        activate_metrics(MetricsRegistry())
        activate_profiler(profiler)
    try:
        wl = ReplayGraphWorkload(graph.copy())
        return wl.build_engine(FixedController(GATE_M), seed=3, engine="fast")
    finally:
        if instrumented:
            deactivate()
            deactivate_metrics()
            deactivate_profiler()


def test_obs_overhead_gate():
    """All three channels on vs all off: < 5% median per-step overhead."""
    graph = _gate_graph()
    profiler = SpanProfiler()
    base_engine = _build_engine(graph, instrumented=False)
    instr_engine = _build_engine(graph, instrumented=True, profiler=profiler)

    def base_step() -> float:
        t0 = time.perf_counter_ns()
        base_engine.step()
        return time.perf_counter_ns() - t0

    def instr_step() -> float:
        # the kernel spans look the profiler up at call time, so it must
        # be globally active during the instrumented engine's steps
        activate_profiler(profiler)
        try:
            t0 = time.perf_counter_ns()
            instr_engine.step()
            return time.perf_counter_ns() - t0
        finally:
            deactivate_profiler()

    base_step(), instr_step()  # warm-up pair, discarded
    base_times, instr_times = [], []
    for _ in range(GATE_STEPS):
        base_times.append(base_step())
        instr_times.append(instr_step())
    base_median = statistics.median(base_times)
    instr_median = statistics.median(instr_times)
    overhead = instr_median / base_median - 1.0

    report = profile_report(profiler)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "case": {
                    "graph": "gnm_random",
                    "n": GATE_N,
                    "d": GATE_D,
                    "m": GATE_M,
                    "steps": GATE_STEPS,
                    "engine": "fast",
                },
                "baseline_median_step_ns": base_median,
                "instrumented_median_step_ns": instr_median,
                "overhead_fraction": overhead,
                "gate_max_overhead": GATE_MAX_OVERHEAD,
                "span_coverage": report.coverage,
                "gate_min_coverage": GATE_MIN_COVERAGE,
                "critical_phase": report.critical_phase,
                "phases": {
                    p.name: {"total_ns": p.total_ns, "share": p.share}
                    for p in report.phases
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    assert report.coverage >= GATE_MIN_COVERAGE, (
        f"span phases explain only {report.coverage:.1%} of step wall-clock "
        f"(need >= {GATE_MIN_COVERAGE:.0%})"
    )
    assert overhead < GATE_MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} >= {GATE_MAX_OVERHEAD:.0%} "
        f"(median step: baseline {base_median / 1e6:.3f} ms, "
        f"instrumented {instr_median / 1e6:.3f} ms)"
    )


def test_sampled_profiling_cuts_span_cost():
    """1-in-N sampling must record ~1/N of the steps, none in between."""
    graph = gnm_random(1000, 8, seed=5)
    with profiling(sample_every=10) as profiler:
        wl = ReplayGraphWorkload(graph.copy())
        engine = wl.build_engine(FixedController(200), seed=3, engine="fast")
        for _ in range(100):
            engine.step()
    report = profile_report(profiler)
    assert report.steps == 10  # steps 0, 10, ..., 90
    assert report.phases  # sampled steps still carry their phase spans
