"""FIG3 — regenerate the controller trajectories of paper Fig. 3.

Timed kernel: one full 120-step hybrid-controller run on the stationary
n = 2000 replay workload.  Shape assertions follow the paper's narrative:
hybrid ≈ 15 steps to converge, Recurrence-A-only much slower, stable tail.
"""

import numpy as np
import pytest

from repro.experiments import fig3
from repro.experiments.fig3 import default_hybrid
from repro.graph.generators import gnm_random
from repro.runtime.workloads import ReplayGraphWorkload


@pytest.fixture(scope="module")
def fig3_result():
    return fig3.run(n=2000, degrees=(16, 48), rho=0.20, steps=120, seed=0)


def _one_hybrid_run():
    graph = gnm_random(2000, 16, seed=41)
    wl = ReplayGraphWorkload(graph)
    return wl.build_engine(default_hybrid(0.2), seed=7).run(max_steps=120)


def test_fig3_regeneration(fig3_result, save_report, benchmark):
    benchmark.pedantic(_one_hybrid_run, rounds=3, iterations=1)
    save_report(
        "fig3",
        fig3_result,
        svg_kwargs={"xlabel": "temporal step t", "ylabel": "allocation m_t"},
    )

    # Paper: hybrid converges close to μ in ~15 steps (we allow 2x)
    assert fig3_result.scalars["settle_hybrid_d16"] <= 30
    assert fig3_result.scalars["settle_hybrid_d48"] <= 30

    # Paper: Recurrence A alone is drastically slower from the cold start
    for d in (16, 48):
        assert (
            fig3_result.scalars[f"settle_recA_d{d}"]
            >= 2.5 * fig3_result.scalars[f"settle_hybrid_d{d}"]
        )


def test_fig3_steady_state_stability(fig3_result):
    """'Quick in convergence AND stable': tail wobble is bounded."""
    for name, _, ys in fig3_result.series:
        if not name.startswith("hybrid"):
            continue
        tail = np.asarray(ys)[60:]
        assert tail.std() / tail.mean() < 0.35, name


def test_fig3_different_density_different_mu(fig3_result):
    """The two graphs must expose genuinely different optima."""
    rows = fig3_result.tables[0][2]
    mus = [row[1] for row in rows]
    assert max(mus) >= 2 * min(mus)
