"""ORD — ordered algorithms (§5 future work) on the PDES workload."""

import numpy as np
import pytest

from repro.apps.des import DiscreteEventSimulation, QueueingNetwork
from repro.control.fixed import FixedController
from repro.experiments import ordered


@pytest.fixture(scope="module")
def ord_result():
    return ordered.run(num_stations=40, num_jobs=60, end_time=40.0, seed=0)


def _one_pdes_run():
    net = QueueingNetwork(40, avg_degree=3.0, seed=21)
    sim = DiscreteEventSimulation(net, num_jobs=60, end_time=20.0, seed=22)
    return sim.build_engine(FixedController(8), seed=23).run(max_steps=10**6)


def test_ordered_regeneration(ord_result, save_report, benchmark):
    benchmark.pedantic(_one_pdes_run, rounds=3, iterations=1)
    save_report("ordered", ord_result)

    # ordered speedup saturates: octupling m from 16 to 128 buys < 40%
    s16 = ord_result.scalars["speedup_m16"]
    s128 = ord_result.scalars["speedup_m128"]
    assert s128 <= 1.4 * s16

    # the hybrid lands near the knee: most of the max speedup at modest m
    assert ord_result.scalars["hybrid_speedup"] >= 0.5 * ord_result.scalars["max_speedup"]


def test_ordered_speedup_monotone_then_flat(ord_result):
    name, ms, speedups = ord_result.series[0]
    arr = np.asarray(speedups)
    # early doublings help, the last ones don't
    assert arr[1] > arr[0]
    assert arr[-1] <= arr[-2] * 1.25


def test_order_aborts_dominate_at_high_m(ord_result):
    rows = ord_result.tables[0][2]
    by_m = {row[0]: row for row in rows}
    assert by_m[128][4] > by_m[4][4]  # order aborts climb with m
