"""Micro-benchmarks of the library's hot kernels.

Not tied to a paper artefact — these guard the performance of the
primitives every experiment leans on: the vectorised commit kernel, graph
snapshotting, engine stepping, Delaunay insertion and the generators.
"""

import numpy as np
import pytest

from repro.apps.delaunay.triangulation import Triangulation
from repro.control.hybrid import HybridController
from repro.graph.generators import gnm_random
from repro.model.permutation import PrefixSampler
from repro.runtime.workloads import ReplayGraphWorkload


@pytest.fixture(scope="module")
def big_graph():
    return gnm_random(2000, 16, seed=0)


def test_committed_mask_kernel(benchmark, big_graph):
    snap = big_graph.snapshot()
    sampler = PrefixSampler(snap, np.random.default_rng(1))

    def draw():
        return sampler.committed(1000).sum()

    total = benchmark(draw)
    assert 0 < total < 1000


def test_snapshot_construction(benchmark, big_graph):
    snap = benchmark(big_graph.snapshot)
    assert snap.num_edges == big_graph.num_edges


def test_graph_generation(benchmark):
    g = benchmark.pedantic(lambda: gnm_random(2000, 16, seed=2), rounds=5, iterations=1)
    assert g.num_edges == 16000


def test_engine_step_throughput(benchmark, big_graph):
    wl = ReplayGraphWorkload(big_graph.copy())
    engine = wl.build_engine(HybridController(0.2), seed=3)

    def hundred_steps():
        for _ in range(100):
            engine.step()

    benchmark.pedantic(hundred_steps, rounds=3, iterations=1)
    assert engine.steps_executed >= 300


@pytest.mark.parametrize("m", [100, 500, 1500])
def test_committed_mask_scaling(benchmark, big_graph, m):
    """The MC kernel's cost scales with the prefix size, not n."""
    snap = big_graph.snapshot()
    sampler = PrefixSampler(snap, np.random.default_rng(m))
    benchmark(lambda: sampler.committed(m).sum())


def test_boruvka_throughput(benchmark):
    from repro.apps.boruvka import BoruvkaMST, random_weighted_graph
    from repro.control.fixed import FixedController

    def run():
        app = BoruvkaMST(random_weighted_graph(500, 8, seed=5))
        app.build_engine(FixedController(32), seed=6).run(max_steps=10**5)
        return app

    app = benchmark.pedantic(run, rounds=3, iterations=1)
    assert app.num_components() == 1


def test_ordered_engine_throughput(benchmark):
    from repro.apps.des import DiscreteEventSimulation, QueueingNetwork
    from repro.control.fixed import FixedController

    net = QueueingNetwork(30, avg_degree=3.0, seed=7)

    def run():
        sim = DiscreteEventSimulation(net, num_jobs=40, end_time=15.0, seed=8)
        return sim.build_engine(FixedController(8), seed=9).run(max_steps=10**6)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.total_committed > 0


def test_delaunay_insertion(benchmark):
    rng = np.random.default_rng(4)
    base = Triangulation.from_points(rng.random((300, 2)).tolist())

    points = iter(rng.random((20000, 2)).tolist())

    def insert_one():
        base.insert(next(points))

    benchmark(insert_one)
    assert base.check_consistency()


# ---------------------------------------------------------------------------
# fast-path regression gate
# ---------------------------------------------------------------------------
#
# The fast engine path only earns its complexity if it stays well ahead of
# the per-task neighbour scan it replaces.  The gate resolves one full
# commit-order prefix of gnm_random(5000, d=8) both ways — the reference
# walk exactly as ExplicitGraphPolicy.resolve performs it (sequential
# isdisjoint against the committed set), and the fast path's slot
# projection + greedy_commit_mask_from_slots — writes the measurements to
# BENCH_kernels.json at the repo root, and fails if the speedup drops
# below 5x.  The end-to-end policy.resolve vs .resolve_fast timings (which
# add identical Task bookkeeping to both sides) are gated separately at
# GATE_MIN_POLICY_SPEEDUP — the policy phase sits far below the raw-kernel
# ratio, so the aggregate gate alone would let it regress unnoticed.

import json
import time
from pathlib import Path

from repro.control.fixed import FixedController
from repro.runtime.conflict import ExplicitGraphPolicy
from repro.runtime.kernels import greedy_commit_mask_from_slots
from repro.runtime.task import CallbackOperator, Task

GATE_MIN_SPEEDUP = 5.0
#: separate floor for the policy-level (Task bookkeeping included) phase —
#: it sits well below the raw-kernel ratio, so the 5x aggregate gate alone
#: would let a policy-layer regression hide behind kernel headroom
GATE_MIN_POLICY_SPEEDUP = 2.5
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
GATE_N, GATE_D, GATE_SEED = 5000, 8, 17


def _gate_graph():
    graph = gnm_random(GATE_N, GATE_D, seed=GATE_SEED)
    graph.csr().edge_list  # warm the memoised view, as a stationary run would
    return graph


def _reference_walk_mask(graph, prefix: list) -> np.ndarray:
    """The per-task scan of ExplicitGraphPolicy.resolve, verbatim."""
    committed: set = set()
    mask = np.zeros(len(prefix), dtype=bool)
    for slot, node in enumerate(prefix):
        if committed.isdisjoint(graph.neighbors(node)):
            committed.add(node)
            mask[slot] = True
    return mask


def _fast_path_mask(snapshot, prefix: np.ndarray) -> np.ndarray:
    """The slot projection + kernel of ExplicitGraphPolicy.resolve_fast."""
    m = prefix.shape[0]
    pos = np.full(snapshot.num_nodes, -1, dtype=np.int64)
    pos[prefix] = np.arange(m, dtype=np.int64)
    u, v = snapshot.edge_list
    pu, pv = pos[u], pos[v]
    if m != snapshot.num_nodes:
        both = np.flatnonzero((pu >= 0) & (pv >= 0))
        pu, pv = pu[both], pv[both]
    return greedy_commit_mask_from_slots(
        np.maximum(pu, pv), np.minimum(pu, pv), m, checked=False
    )


def _resolution_case(n: int, d: int, m: int, seed: int):
    graph = gnm_random(n, d, seed=seed)
    policy = ExplicitGraphPolicy(graph)
    operator = CallbackOperator(neighborhood=lambda t: set(), apply=lambda t: [])
    nodes = np.random.default_rng(seed).permutation(graph.nodes())[:m]
    batch = [Task(payload=int(node)) for node in nodes]
    graph.csr()  # warm the memoised CSR view, as a stationary run would
    return policy, operator, batch


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fast_path_speedup_gate():
    """fast >= 5x reference on gnm_random(5000, d=8); records the ratios."""
    graph = _gate_graph()
    snapshot = graph.csr()
    prefix = np.random.default_rng(GATE_SEED).permutation(GATE_N).astype(np.int64)

    ref_mask = _reference_walk_mask(graph, prefix.tolist())
    fast_mask = _fast_path_mask(snapshot, prefix)
    assert np.array_equal(ref_mask, fast_mask)

    prefix_list = prefix.tolist()
    t_ref = _best_of(lambda: _reference_walk_mask(graph, prefix_list))
    t_fast = _best_of(lambda: _fast_path_mask(snapshot, prefix))
    speedup = t_ref / t_fast

    # context: the policy-level timings, Task bookkeeping included
    policy, operator, batch = _resolution_case(GATE_N, GATE_D, GATE_N, GATE_SEED)
    t_ref_policy = _best_of(lambda: policy.resolve(batch, operator))
    t_fast_policy = _best_of(lambda: policy.resolve_fast(batch, operator))

    BENCH_JSON.write_text(
        json.dumps(
            {
                "case": {"graph": "gnm_random", "n": GATE_N, "d": GATE_D, "m": GATE_N},
                "reference_seconds": t_ref,
                "fast_seconds": t_fast,
                "speedup": speedup,
                "gate_min_speedup": GATE_MIN_SPEEDUP,
                "committed": int(ref_mask.sum()),
                "aborted": int((~ref_mask).sum()),
                "policy_resolve": {
                    "reference_seconds": t_ref_policy,
                    "fast_seconds": t_fast_policy,
                    "speedup": t_ref_policy / t_fast_policy,
                    "gate_min_speedup": GATE_MIN_POLICY_SPEEDUP,
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    policy_speedup = t_ref_policy / t_fast_policy
    assert policy_speedup >= GATE_MIN_POLICY_SPEEDUP, (
        f"policy-level fast path regressed: {policy_speedup:.1f}x < "
        f"{GATE_MIN_POLICY_SPEEDUP}x (ref {t_ref_policy * 1e3:.2f} ms, "
        f"fast {t_fast_policy * 1e3:.2f} ms)"
    )
    assert speedup >= GATE_MIN_SPEEDUP, (
        f"fast path regressed: {speedup:.1f}x < {GATE_MIN_SPEEDUP}x "
        f"(ref {t_ref * 1e3:.2f} ms, fast {t_fast * 1e3:.2f} ms)"
    )


def test_resolve_fast_throughput(benchmark):
    policy, operator, batch = _resolution_case(5000, 8, 2500, seed=17)
    outcome = benchmark(lambda: policy.resolve_fast(batch, operator))
    assert len(outcome.committed) + len(outcome.aborted) == len(batch)


def test_resolve_reference_throughput(benchmark):
    policy, operator, batch = _resolution_case(5000, 8, 2500, seed=17)
    outcome = benchmark(lambda: policy.resolve(batch, operator))
    assert len(outcome.committed) + len(outcome.aborted) == len(batch)


def test_full_engine_fast_vs_reference_step():
    """End-to-end sanity: one fast engine step is never slower than 1x ref."""
    graph = gnm_random(5000, 8, seed=21)

    def steps(mode):
        wl = ReplayGraphWorkload(graph.copy())
        engine = wl.build_engine(FixedController(2500), seed=3, engine=mode)
        engine.step()  # warm caches and JIT-able paths
        return _best_of(lambda: engine.step(), repeats=3)

    t_ref = steps("reference")
    t_fast = steps("fast")
    assert t_fast <= t_ref  # the full step includes shared overhead
