"""Micro-benchmarks of the library's hot kernels.

Not tied to a paper artefact — these guard the performance of the
primitives every experiment leans on: the vectorised commit kernel, graph
snapshotting, engine stepping, Delaunay insertion and the generators.
"""

import numpy as np
import pytest

from repro.apps.delaunay.triangulation import Triangulation
from repro.control.hybrid import HybridController
from repro.graph.generators import gnm_random
from repro.model.permutation import PrefixSampler
from repro.runtime.workloads import ReplayGraphWorkload


@pytest.fixture(scope="module")
def big_graph():
    return gnm_random(2000, 16, seed=0)


def test_committed_mask_kernel(benchmark, big_graph):
    snap = big_graph.snapshot()
    sampler = PrefixSampler(snap, np.random.default_rng(1))

    def draw():
        return sampler.committed(1000).sum()

    total = benchmark(draw)
    assert 0 < total < 1000


def test_snapshot_construction(benchmark, big_graph):
    snap = benchmark(big_graph.snapshot)
    assert snap.num_edges == big_graph.num_edges


def test_graph_generation(benchmark):
    g = benchmark.pedantic(lambda: gnm_random(2000, 16, seed=2), rounds=5, iterations=1)
    assert g.num_edges == 16000


def test_engine_step_throughput(benchmark, big_graph):
    wl = ReplayGraphWorkload(big_graph.copy())
    engine = wl.build_engine(HybridController(0.2), seed=3)

    def hundred_steps():
        for _ in range(100):
            engine.step()

    benchmark.pedantic(hundred_steps, rounds=3, iterations=1)
    assert engine.steps_executed >= 300


@pytest.mark.parametrize("m", [100, 500, 1500])
def test_committed_mask_scaling(benchmark, big_graph, m):
    """The MC kernel's cost scales with the prefix size, not n."""
    snap = big_graph.snapshot()
    sampler = PrefixSampler(snap, np.random.default_rng(m))
    benchmark(lambda: sampler.committed(m).sum())


def test_boruvka_throughput(benchmark):
    from repro.apps.boruvka import BoruvkaMST, random_weighted_graph
    from repro.control.fixed import FixedController

    def run():
        app = BoruvkaMST(random_weighted_graph(500, 8, seed=5))
        app.build_engine(FixedController(32), seed=6).run(max_steps=10**5)
        return app

    app = benchmark.pedantic(run, rounds=3, iterations=1)
    assert app.num_components() == 1


def test_ordered_engine_throughput(benchmark):
    from repro.apps.des import DiscreteEventSimulation, QueueingNetwork
    from repro.control.fixed import FixedController

    net = QueueingNetwork(30, avg_degree=3.0, seed=7)

    def run():
        sim = DiscreteEventSimulation(net, num_jobs=40, end_time=15.0, seed=8)
        return sim.build_engine(FixedController(8), seed=9).run(max_steps=10**6)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.total_committed > 0


def test_delaunay_insertion(benchmark):
    rng = np.random.default_rng(4)
    base = Triangulation.from_points(rng.random((300, 2)).tolist())

    points = iter(rng.random((20000, 2)).tolist())

    def insert_one():
        base.insert(next(points))

    benchmark(insert_one)
    assert base.check_consistency()
