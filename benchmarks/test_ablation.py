"""ABL — ablation of Algorithm 1's design choices on the Fig. 3 setup."""

import pytest

from repro.experiments import ablation


@pytest.fixture(scope="module")
def abl_result():
    return ablation.run(n=2000, d=16, rho=0.20, steps=160, replications=4, seed=0)


def _settles(result):
    return {
        k.removeprefix("settle::"): v
        for k, v in result.scalars.items()
        if k.startswith("settle::")
    }


def test_ablation_regeneration(abl_result, save_report, benchmark):
    benchmark.pedantic(
        lambda: ablation.run(n=800, d=12, steps=80, replications=1, seed=1),
        rounds=1,
        iterations=1,
    )
    save_report("ablation", abl_result)


def test_hybridisation_pays(abl_result):
    """The hybrid must settle far faster than A-only (the whole point)."""
    s = _settles(abl_result)
    assert s["hybrid (paper)"] * 2 <= s["A-only"]


def test_smart_start_is_best_cold_start(abl_result):
    s = _settles(abl_result)
    assert s["smart start"] <= s["hybrid (paper)"]


def test_oracle_is_floor(abl_result):
    s = _settles(abl_result)
    assert s["oracle"] == 0.0
    assert all(v >= 0.0 for v in s.values())


def test_aimd_slower_than_hybrid(abl_result):
    """AIMD's additive climb loses to Recurrence B's multiplicative jump."""
    s = _settles(abl_result)
    assert s["hybrid (paper)"] < s["AIMD"]


def test_raw_updates_are_noisy(abl_result):
    """T=1 (no averaging) must be less stable than the paper's T=4."""
    rows = abl_result.tables[0][2]
    wobble = {name: w for name, settle, w, r, err in rows}
    assert wobble["T=1"] >= wobble["hybrid (paper)"]
