"""COSTS — abort-cost sensitivity of the optimal target ρ*."""

import numpy as np
import pytest

from repro.control.hybrid import HybridController
from repro.experiments import costs
from repro.graph.generators import gnm_random
from repro.runtime.costs import ScaledAbortCostModel
from repro.runtime.workloads import ConsumingGraphWorkload


@pytest.fixture(scope="module")
def costs_result():
    return costs.run(n=3000, d=16, replications=2, seed=0)


def _one_costed_drain():
    wl = ConsumingGraphWorkload(gnm_random(3000, 16, seed=41))
    eng = wl.build_engine(
        HybridController(0.25, m_max=256), seed=42, cost_model=ScaledAbortCostModel(4.0)
    )
    eng.run(max_steps=10**6)
    return eng


def test_costs_regeneration(costs_result, save_report, benchmark):
    eng = benchmark.pedantic(_one_costed_drain, rounds=2, iterations=1)
    assert eng.costs.total > 0
    save_report("costs", costs_result)

    s = costs_result.scalars
    # the optimal target never increases as rollback gets pricier...
    best = [s[f"best_rho_factor{f:g}"] for f in (0.25, 1.0, 2.0, 4.0)]
    assert all(b >= a for a, b in zip(best[::-1], best[::-1][1:]))
    # ...and the extremes genuinely differ
    assert best[0] > best[-1]


def test_energy_curves_are_unimodalish(costs_result):
    """Each abort factor's energy curve has an interior-or-boundary optimum
    with higher energy on both extremes of the sweep than at its best ρ."""
    for title, headers, rows in costs_result.tables:
        energies = np.array([row[4] for row in rows])
        best = energies.min()
        assert energies[0] >= best
        assert energies[-1] >= best
