"""APPS — the controller on the real irregular applications (§2, §5)."""

import pytest

from repro.apps.boruvka import BoruvkaMST, kruskal_weight, random_weighted_graph
from repro.control.hybrid import HybridController
from repro.experiments import apps_eval


APPS = ("delaunay", "boruvka", "coloring", "sp", "maxflow", "components")


@pytest.fixture(scope="module")
def apps_result():
    return apps_eval.run(
        apps=APPS,
        scale=400,
        rho=0.25,
        fixed_ms=(2, 16, 128),
        max_steps=6000,
        seed=0,
    )


def _boruvka_run():
    g = random_weighted_graph(400, 8, seed=11)
    app = BoruvkaMST(g)
    app.build_engine(HybridController(0.25), seed=12).run(max_steps=6000)
    return app


def test_apps_regeneration(apps_result, save_report, benchmark):
    app = benchmark.pedantic(_boruvka_run, rounds=3, iterations=1)
    assert app.total_weight == pytest.approx(kruskal_weight(app.graph), abs=1e-9)
    save_report("apps", apps_result)


@pytest.mark.parametrize("app", APPS)
def test_hybrid_on_tradeoff_frontier(apps_result, app):
    """Per application: hybrid is no slower than the tiny fixed allocation
    and wastes no more than the huge one."""
    s = apps_result.scalars
    assert s[f"{app}_hybrid_steps"] <= s[f"{app}_fixed-2_steps"]
    assert s[f"{app}_hybrid_waste"] <= s[f"{app}_fixed-128_waste"] + 0.02


@pytest.mark.parametrize("app", APPS)
def test_big_fixed_allocation_wastes_more(apps_result, app):
    """The paper's motivation: over-allocation inflates speculative waste."""
    s = apps_result.scalars
    assert s[f"{app}_fixed-128_waste"] >= s[f"{app}_fixed-2_waste"]
