"""PARETO — the §2.1 makespan/energy trade-off swept by ρ."""

import numpy as np
import pytest

from repro.control.hybrid import HybridController
from repro.experiments import pareto
from repro.graph.generators import gnm_random
from repro.runtime.workloads import ConsumingGraphWorkload


@pytest.fixture(scope="module")
def pareto_result():
    return pareto.run(n=4000, d=16, replications=3, seed=0)


def _one_drain():
    wl = ConsumingGraphWorkload(gnm_random(4000, 16, seed=31))
    return wl.build_engine(HybridController(0.25, m_max=2048), seed=32).run(max_steps=10**6)


def test_pareto_regeneration(pareto_result, save_report, benchmark):
    res = benchmark.pedantic(_one_drain, rounds=2, iterations=1)
    assert res.total_committed == 4000
    save_report("pareto", pareto_result)

    s = pareto_result.scalars
    # higher targets buy speed...
    assert s["makespan_rho0.6"] < s["makespan_rho0.05"]
    # ...and cost waste
    assert s["waste_rho0.6"] > s["waste_rho0.05"]
    # delivered waste tracks the requested target (the controller works)
    for rho in (0.1, 0.2, 0.3):
        assert s[f"waste_rho{rho:g}"] == pytest.approx(rho, abs=0.12)


def test_remark1_band_is_the_knee(pareto_result):
    """ρ = 0.2–0.3 captures most of the speed at far below max energy."""
    s = pareto_result.scalars
    speed_gain_total = s["makespan_rho0.05"] - s["makespan_rho0.6"]
    speed_gain_at_03 = s["makespan_rho0.05"] - s["makespan_rho0.3"]
    assert speed_gain_at_03 >= 0.6 * speed_gain_total
    assert s["energy_rho0.3"] <= 0.8 * s["energy_rho0.6"]


def test_waste_monotone_in_rho(pareto_result):
    name, rhos, _ = pareto_result.series[0]
    wastes = [pareto_result.scalars[f"waste_rho{r:g}"] for r in rhos]
    diffs = np.diff(wastes)
    assert np.all(diffs > -0.03)
