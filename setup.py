"""Setup shim so `pip install -e .` works offline (no `wheel` available).

All metadata lives in pyproject.toml; this file only enables the legacy
editable-install path in environments without the `wheel` package.
"""

from setuptools import setup

setup()
