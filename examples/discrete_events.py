#!/usr/bin/env python
"""Ordered speculation: parallel discrete-event simulation (§5 future work).

Events of a closed queueing network must commit chronologically; the
ordered engine speculates on the earliest pending events, aborting on
station conflicts AND on order violations (speculating past newly created
earlier work).  The committed history is verified to be *identical* to a
strictly sequential simulation, for every allocation — then the sweep
shows how quickly ordered parallelism saturates compared to the unordered
workloads of the other examples.

Run:  python examples/discrete_events.py [seed]
"""

import sys

from repro.apps.des import DiscreteEventSimulation, QueueingNetwork, sequential_history
from repro.control import FixedController, HybridController
from repro.utils import format_table

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 0


def main() -> None:
    network = QueueingNetwork(40, avg_degree=3.0, seed=SEED)
    reference = sequential_history(network, num_jobs=60, end_time=30.0, seed=SEED + 1)
    print(f"queueing network: 40 stations, 60 jobs, {len(reference)} events\n")

    rows = []
    for label, controller in [
        ("fixed m=1 (sequential)", FixedController(1)),
        ("fixed m=4", FixedController(4)),
        ("fixed m=16", FixedController(16)),
        ("fixed m=64", FixedController(64)),
        ("hybrid (rho=30%)", HybridController(0.30)),
    ]:
        sim = DiscreteEventSimulation(network, num_jobs=60, end_time=30.0, seed=SEED + 1)
        engine = sim.build_engine(controller, seed=SEED + 2)
        result = engine.run(max_steps=10**7)
        assert sim.history == reference, "optimistic run diverged from the oracle!"
        rows.append(
            (
                label,
                len(result),
                round(len(reference) / len(result), 2),
                engine.conflict_aborts_total,
                engine.order_aborts_total,
            )
        )
    print(
        format_table(
            ["controller", "steps", "speedup", "conflict aborts", "order aborts"],
            rows,
            title="every run commits the bit-identical chronological history",
        )
    )
    print(
        "\nNote how speedup saturates while aborts explode — the ordering\n"
        "constraint caps exploitable parallelism, exactly the open problem\n"
        "the paper's §5 describes."
    )


if __name__ == "__main__":
    main()
