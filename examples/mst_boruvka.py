#!/usr/bin/env python
"""Borůvka's MST as an optimistically parallelised work-set algorithm.

Components grab their lightest outgoing edge and contract; concurrent
contractions conflict when they touch the same component.  Parallelism is
huge at the start (every node is a component) and collapses to nothing as
the forest merges — the controller rides that decay down.  The result is
verified against an independent Kruskal implementation.

Run:  python examples/mst_boruvka.py [seed]
"""

import sys

from repro.apps.boruvka import BoruvkaMST, kruskal_weight, random_weighted_graph
from repro.control import HybridController
from repro.utils import format_series, format_table

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 0


def main() -> None:
    graph = random_weighted_graph(2000, 8, seed=SEED)
    print(f"weighted graph: {graph.num_nodes} nodes, {graph.num_edges} edges\n")

    app = BoruvkaMST(graph)
    engine = app.build_engine(HybridController(rho=0.25, m_max=512), seed=SEED + 1)
    result = engine.run(max_steps=20000)

    reference = kruskal_weight(graph)
    assert abs(app.total_weight - reference) < 1e-9, "MST weight mismatch!"

    print(
        format_table(
            ["metric", "value"],
            [
                ("MST edges", len(app.mst_edges)),
                ("Boruvka weight", round(app.total_weight, 6)),
                ("Kruskal weight (oracle)", round(reference, 6)),
                ("components left", app.num_components()),
                ("temporal steps", len(result)),
                ("speculative waste", round(result.wasted_fraction, 4)),
                ("stale task commits", app.stale_commits),
            ],
            title="Boruvka under the hybrid controller",
        )
    )
    print()
    print(
        format_series(
            "allocation m_t (rides Boruvka's decaying parallelism)",
            list(range(len(result))),
            result.m_trace.tolist(),
        )
    )
    print()
    print(
        format_series(
            "work-set size (components with outgoing edges)",
            list(range(len(result))),
            result.workset_trace.tolist(),
        )
    )


if __name__ == "__main__":
    main()
