#!/usr/bin/env python
"""Tracking abrupt changes in available parallelism (§4.1).

LonESTAR-style profiles show irregular applications swinging from no
parallelism to ~1000 parallel tasks within ~30 steps.  This example
replays a Delaunay-style burst and a step profile and shows the hybrid
controller re-tracking each phase's optimum within a few windows, while a
Recurrence-A-only controller lags far behind.

The two contenders are resolved by *name* through the plugin registry:
``"recurrence-a"`` is built in, and the Fig. 3 hybrid variant is
registered here with :func:`repro.register` — the same one-liner a
third-party package would use to plug its own controller into
``repro.api.run`` and the experiments CLI.

Run:  python examples/adaptive_allocation.py [seed]
"""

import sys

import repro
from repro.apps.profiles import (
    ScheduledReplayWorkload,
    delaunay_burst_profile,
    step_profile,
)
from repro.control.tuning import oracle_mu
from repro.experiments.adaptation import transition_lags
from repro.experiments.fig3 import default_hybrid
from repro.utils import format_series, format_table

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 0
RHO = 0.20

# plug the Fig. 3 hybrid into the controller registry: factories receive
# the RunConfig and build from its fields
repro.register("controller", "fig3-hybrid", lambda config: default_hybrid(config.rho))

CONTROLLERS = repro.registry("controller")


def run_profile(name, phases):
    print(f"--- profile: {name} ---")
    config = repro.RunConfig(rho=RHO, seed=SEED + 1)
    mus = [oracle_mu(p.graph, RHO, grid_size=14, reps=60, seed=SEED) for p in phases]
    rows = []
    for label, controller_name in [
        ("hybrid", "fig3-hybrid"),
        ("recurrence A only", "recurrence-a"),
    ]:
        controller = CONTROLLERS.create(controller_name, config)
        workload = ScheduledReplayWorkload(phases)
        engine = workload.build_engine(controller, seed=config.seed)
        result = engine.run(max_steps=workload.total_steps())
        lags = transition_lags(phases, result.m_trace, mus)
        rows.append((label, " ".join(map(str, lags))))
        print(
            format_series(
                f"{label}: m_t (phase optima {mus})",
                list(range(len(result))),
                result.m_trace.tolist(),
            )
        )
        print()
    print(format_table(["controller", "re-tracking lag per phase (steps)"], rows))
    print()


def main() -> None:
    run_profile("step 4 -> 250 -> 4", step_profile(4, 250, 2000, steps_per_phase=50))
    run_profile(
        "delaunay burst (0 -> 500 in ~30 steps)",
        delaunay_burst_profile(peak=500, total_tasks=2000),
    )


if __name__ == "__main__":
    main()
