#!/usr/bin/env python
"""Quickstart: adaptive processor allocation on a random conflict graph.

Builds a 2000-node CC graph (average degree 16 — the paper's Fig. 2/3
setup), runs the hybrid controller of Algorithm 1 against it, and prints
the allocation trajectory: watch m_t climb from the cold start m₀ = 2 to
the optimum in a handful of steps and then hold, with the realised
conflict ratio pinned near the target ρ = 20%.

Everything is named in one typed :class:`repro.RunConfig` — the
``workload`` and ``controller`` strings resolve through the plugin
registry (``repro.registry``), so swapping ``"hybrid"`` for ``"aimd"``
or a controller you registered yourself is a one-word change.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import RunConfig, run
from repro.control import oracle_mu
from repro.graph import gnm_random
from repro.utils import format_series, format_table

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 0
RHO = 0.20


def main() -> None:
    graph = gnm_random(2000, 16, seed=SEED)
    print(f"CC graph: {graph}")

    mu = oracle_mu(graph, RHO, seed=SEED)
    print(f"oracle optimum: mu = {mu} (largest m with conflict ratio <= {RHO:.0%})\n")

    config = RunConfig(
        workload="replay",      # registry name: stationary environment
        controller="hybrid",    # registry name: Algorithm 1
        rho=RHO,
        seed=SEED + 1,
        max_steps=100,
    )
    result = run(config, graph=graph)

    steps = list(range(len(result)))
    print(format_series("allocation m_t", steps, result.m_trace.tolist()))
    print()
    print(format_series("conflict ratio r_t", steps, result.r_trace.tolist()))
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ("settling step (±30% of mu)", result.settling_step(mu, band=0.3)),
                ("steady-state mean m", float(result.m_trace[40:].mean())),
                ("steady-state mean r", float(result.r_trace[40:].mean())),
                ("target rho", RHO),
                ("committed tasks", result.total_committed),
                ("wasted launches", result.total_aborted),
            ],
            title="summary",
        )
    )


if __name__ == "__main__":
    main()
