#!/usr/bin/env python
"""Explore the paper's §3 bounds analytically and against simulation.

For a chosen (n, d) this prints:

* the Turán lower bound n/(d+1) on exploitable parallelism;
* the worst-case conflict-ratio curve (Thm. 3) against a simulated random
  graph of the same density;
* Cor. 3's α-table — including the 21.3% smart-start guarantee at α = ½ —
  and the safe initial allocation the controller derives from it.

Run:  python examples/theory_playground.py [n] [d]
"""

import sys

import numpy as np

from repro.graph import gnm_random, kdn_worst_case
from repro.model import (
    alpha_conflict_bound,
    alpha_conflict_bound_limit,
    estimate_conflict_ratio,
    initial_derivative,
    safe_initial_m,
    turan_bound,
    worst_case_conflict_ratio,
)
from repro.utils import format_table

N = int(sys.argv[1]) if len(sys.argv) > 1 else 2040
D = int(sys.argv[2]) if len(sys.argv) > 2 else 16


def main() -> None:
    n = N - N % (D + 1)  # K_d^n needs (d+1) | n
    print(f"n = {n}, d = {D}")
    print(f"Turán bound:        EM >= n/(d+1) = {turan_bound(n, D):.1f} tasks/step")
    print(f"initial derivative: Δr̄(1) = d/2(n−1) = {initial_derivative(n, D):.5f}")
    print(f"smart start:        m0 = {safe_initial_m(n, D, 0.213)} keeps r̄ <= 21.3%\n")

    random_graph = gnm_random(n, D, seed=0)
    kdn = kdn_worst_case(n, D)
    rows = []
    for m in np.unique(np.geomspace(2, n, 12).astype(int)):
        bound = worst_case_conflict_ratio(n, D, int(m))
        mc_rand = estimate_conflict_ratio(random_graph, int(m), reps=80, seed=int(m))
        mc_kdn = estimate_conflict_ratio(kdn, int(m), reps=80, seed=int(m))
        rows.append((int(m), bound, mc_kdn.mean, mc_rand.mean))
    print(
        format_table(
            ["m", "worst-case bound", "K_d^n (MC)", "random graph (MC)"],
            rows,
            title="Thm. 3: the bound is attained by K_d^n and dominates everything else",
        )
    )
    print()
    alpha_rows = [
        (alpha, alpha_conflict_bound(alpha, D), alpha_conflict_bound_limit(alpha))
        for alpha in (0.1, 0.25, 0.5, 1.0, 2.0)
    ]
    print(
        format_table(
            ["α = m(d+1)/n", "bound (d=%d)" % D, "bound (d→∞)"],
            alpha_rows,
            title="Cor. 3: conflict ratio when allocating α·n/(d+1) processors",
        )
    )


if __name__ == "__main__":
    main()
