#!/usr/bin/env python
"""Writing your own irregular workload against the public API.

The smallest complete recipe: define an :class:`Operator` with a
``neighborhood`` (the data items a task touches — overlapping
neighbourhoods conflict) and an ``apply`` (the commit effect, returning
any new tasks), then hand the initial tasks to :func:`repro.for_each`.

The toy problem here is *token routing on a hypercube*: each task moves a
token one hop toward its destination; two tokens conflict when they touch
the same vertex.  Parallelism starts high (tokens spread out) and
fluctuates as tokens funnel through shared corners — and the controller
just deals with it.

Run:  python examples/custom_workload.py [seed]
"""

import sys

import numpy as np

from repro import for_each
from repro.runtime.task import Operator, Task
from repro.utils import format_series, format_table

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 0
DIMENSION = 10  # hypercube Q_10: 1024 vertices
NUM_TOKENS = 300


class TokenRouting(Operator):
    """Route each token along greedy bit-fixing paths to its destination."""

    def __init__(self, tokens: list[tuple[int, int]]):
        # token id -> (current vertex, destination)
        self.position = {i: src for i, (src, _) in enumerate(tokens)}
        self.destination = {i: dst for i, (_, dst) in enumerate(tokens)}
        self.hops = 0

    def _next_vertex(self, token: int) -> int:
        cur, dst = self.position[token], self.destination[token]
        differing = cur ^ dst
        lowest = differing & -differing  # fix the lowest differing bit
        return cur ^ lowest

    def neighborhood(self, task: Task):
        token = task.payload
        cur = self.position[token]
        if cur == self.destination[token]:
            return ()
        return {cur, self._next_vertex(token)}  # both endpoints of the hop

    def apply(self, task: Task):
        token = task.payload
        if self.position[token] == self.destination[token]:
            return []
        self.position[token] = self._next_vertex(token)
        self.hops += 1
        if self.position[token] != self.destination[token]:
            return [Task(payload=token)]  # keep routing
        return []


def main() -> None:
    rng = np.random.default_rng(SEED)
    n = 2**DIMENSION
    tokens = [
        (int(rng.integers(0, n)), int(rng.integers(0, n))) for _ in range(NUM_TOKENS)
    ]
    app = TokenRouting(tokens)
    result = for_each(
        [Task(payload=i) for i in range(NUM_TOKENS)], app, rho=0.25, seed=SEED + 1
    )

    assert all(app.position[i] == app.destination[i] for i in range(NUM_TOKENS))
    total_distance = sum(bin(s ^ d).count("1") for s, d in tokens)
    print(
        format_table(
            ["metric", "value"],
            [
                ("tokens", NUM_TOKENS),
                ("total hop distance", total_distance),
                ("hops executed", app.hops),
                ("temporal steps", len(result)),
                ("speedup vs serial", round(result.speedup_vs_serial(), 2)),
                ("speculative waste", round(result.wasted_fraction, 4)),
            ],
            title=f"token routing on Q_{DIMENSION} under the hybrid controller",
        )
    )
    print()
    print(
        format_series(
            "allocation m_t",
            list(range(len(result))),
            result.m_trace.tolist(),
        )
    )


if __name__ == "__main__":
    main()
