#!/usr/bin/env python
"""Delaunay mesh refinement under adaptive processor allocation.

The paper's running example (§2): bad (skinny) triangles are fixed by
inserting circumcenters; concurrent insertions conflict when their
cavities overlap.  This example refines a random mesh twice — once with
the adaptive hybrid controller, once with a large fixed allocation — and
compares makespan, wasted speculative work and final mesh quality.

Run:  python examples/mesh_refinement.py [seed]
"""

import sys

from repro.apps.delaunay import RefinementWorkload, mesh_quality, random_input_mesh
from repro.control import FixedController, HybridController
from repro.utils import format_series, format_table

SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 0


def refine(controller, label, svg_path=None):
    mesh = random_input_mesh(400, seed=SEED)
    workload = RefinementWorkload(mesh, min_angle=25.0, min_edge=0.02)
    engine = workload.build_engine(controller, seed=SEED + 1)
    result = engine.run(max_steps=10000)
    if svg_path:
        mesh.to_svg(svg_path)
        print(f"  wrote {svg_path}")
    quality = mesh_quality(mesh)
    assert workload.check_refined(), "refinement did not drain"
    assert mesh.check_consistency(), "mesh corrupted"
    return {
        "label": label,
        "steps": len(result),
        "committed": result.total_committed,
        "wasted": result.wasted_fraction,
        "insertions": workload.insertions,
        "triangles": quality["triangles"],
        "mean_min_angle": quality["mean_min_angle"],
        "result": result,
    }


def main() -> None:
    input_mesh = random_input_mesh(400, seed=SEED)
    before = mesh_quality(input_mesh)
    input_mesh.to_svg("mesh_before.svg")
    print(
        f"input mesh: {before['triangles']:.0f} triangles, "
        f"mean min-angle {before['mean_min_angle']:.1f}° (wrote mesh_before.svg)\n"
    )
    runs = [
        refine(HybridController(rho=0.25), "hybrid (rho=25%)", svg_path="mesh_after.svg"),
        refine(FixedController(64), "fixed m=64"),
        refine(FixedController(4), "fixed m=4"),
    ]
    print(
        format_table(
            ["controller", "steps", "committed", "wasted", "insertions", "mean min-angle"],
            [
                (
                    r["label"],
                    r["steps"],
                    r["committed"],
                    round(r["wasted"], 3),
                    r["insertions"],
                    round(r["mean_min_angle"], 2),
                )
                for r in runs
            ],
            title="refinement under three allocation policies",
        )
    )
    print()
    hybrid = runs[0]["result"]
    print(
        format_series(
            "hybrid allocation m_t (tracks the shrinking work-set)",
            list(range(len(hybrid))),
            hybrid.m_trace.tolist(),
        )
    )


if __name__ == "__main__":
    main()
